"""Simulation events and the pending-event queue.

Events are totally ordered by ``(time, priority, seq)``.  The sequence
number is assigned at scheduling time and breaks ties deterministically,
which is what makes both engines reproducible: two events scheduled for the
same timestamp always fire in scheduling order regardless of heap
internals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Default event priority.  Lower values fire first at equal timestamps.
PRIORITY_NORMAL = 100
#: Priority used by clock ticks so that periodic work precedes messages
#: delivered at the same instant.
PRIORITY_CLOCK = 50
#: Priority for engine-internal bookkeeping (fires before everything else).
PRIORITY_SYSTEM = 0


@dataclass(order=False)
class Event:
    """A single scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    handler:
        Callable invoked as ``handler(event)`` when the event fires.
    payload:
        Arbitrary user data carried by the event.
    priority:
        Secondary ordering key; lower fires first at equal ``time``.
    seq:
        Tertiary ordering key; assigned by the queue, unique per event.
    src / dst:
        Optional component names, used for tracing and for routing
        cross-partition events in the parallel engine.
    """

    time: float
    handler: Optional[Callable[["Event"], None]] = None
    payload: Any = None
    priority: int = PRIORITY_NORMAL
    seq: int = -1
    src: Optional[str] = None
    dst: Optional[str] = None
    cancelled: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.9g}, prio={self.priority}, seq={self.seq}, "
            f"src={self.src!r}, dst={self.dst!r})"
        )


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Wraps :mod:`heapq` with a monotonically increasing sequence counter so
    that ties on ``(time, priority)`` are broken in insertion order.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        # A plain int rather than itertools.count(): the counter is part
        # of engine snapshots, so it must pickle and resume exactly.
        self._next_seq = 0
        self._cancelled_in_heap = 0

    def take_seq(self) -> int:
        """Claim the next sequence number (shared tie-break ordering)."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def __len__(self) -> int:
        return max(0, len(self._heap) - self._cancelled_in_heap)

    def __bool__(self) -> bool:
        return self.peek_time() != float("inf")

    def push(self, event: Event) -> Event:
        """Insert *event*, assigning its sequence number.

        Returns the event for convenience (e.g. to keep a cancellation
        handle).
        """
        if event.seq < 0:
            event.seq = self.take_seq()
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self._cancelled_in_heap = max(0, self._cancelled_in_heap - 1)
                continue
            return ev
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Timestamp of the earliest live event, or ``inf`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap = max(0, self._cancelled_in_heap - 1)
        if not self._heap:
            return float("inf")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for an event cancelled while still in the heap.

        Cancellation via :meth:`Event.cancel` alone still works (cancelled
        events are skipped when popped); this hook merely keeps
        :func:`len` accurate.
        """
        self._cancelled_in_heap += 1

    def drain_until(self, horizon: float) -> list[Event]:
        """Pop and return every live event with ``time < horizon``, ordered."""
        out: list[Event] = []
        while self and self.peek_time() < horizon:
            out.append(self.pop())
        return out
