"""Components and ports — the building blocks of a simulated system.

A :class:`Component` models one element of the system under study (a
simulated MPI rank, a storage device, a network switch...).  Components
interact only by

* sending payloads out of named :class:`Port` objects, which the engine
  delivers through :class:`~repro.des.link.Link` latency, and
* scheduling *self events* at a future simulated time.

This mirrors the SST component contract closely enough that the BE layer
built on top (``repro.core``) is structured like a real BE-SST element
library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.des.event import PRIORITY_NORMAL, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Engine
    from repro.des.link import Link


class Port:
    """A named connection point on a component.

    Ports are created lazily by :meth:`Component.port` and bound to at most
    one :class:`~repro.des.link.Link`.
    """

    def __init__(self, component: "Component", name: str) -> None:
        self.component = component
        self.name = name
        self.link: Optional["Link"] = None

    @property
    def connected(self) -> bool:
        return self.link is not None

    def peer(self) -> Optional["Port"]:
        """The port at the far end of this port's link, if connected."""
        if self.link is None:
            return None
        return self.link.other(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.component.name}.{self.name})"


class Component:
    """Base class for simulated system elements.

    Subclasses override :meth:`handle_event` (payload arriving on a port)
    and optionally :meth:`setup` / :meth:`finish` lifecycle hooks.

    Attributes
    ----------
    name:
        Unique name within the engine; also keys the component's RNG stream
        and its partition assignment in the parallel engine.
    engine:
        Set by :meth:`~repro.des.engine.Engine.register`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.engine: Optional["Engine"] = None
        self.ports: dict[str, Port] = {}

    # -- lifecycle ---------------------------------------------------------

    def setup(self) -> None:
        """Called once by the engine before the first event fires."""

    def finish(self) -> None:
        """Called once by the engine after the simulation ends."""

    # -- ports and links ---------------------------------------------------

    def port(self, name: str) -> Port:
        """Return the port *name*, creating it on first use."""
        p = self.ports.get(name)
        if p is None:
            p = Port(self, name)
            self.ports[name] = p
        return p

    # -- time and randomness -----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        if self.engine is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        return self.engine.now

    @property
    def rng(self) -> np.random.Generator:
        """This component's private deterministic random stream."""
        if self.engine is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        return self.engine.rngs.get(self.name)

    # -- event scheduling ---------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule *callback* on this component after *delay* seconds.

        Returns the event, which may be cancelled via ``event.cancel()``.
        """
        if self.engine is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        ev = Event(
            time=self.engine.now + delay,
            handler=callback,
            payload=payload,
            priority=priority,
            src=self.name,
            dst=self.name,
        )
        return self.engine.schedule_event(ev)

    def send(self, port_name: str, payload: Any, extra_delay: float = 0.0) -> Event:
        """Send *payload* out of *port_name* through its link.

        The payload arrives at the peer component after the link latency
        plus *extra_delay*, invoking the peer's :meth:`handle_event`.
        """
        port = self.port(port_name)
        if port.link is None:
            raise RuntimeError(
                f"port {self.name}.{port_name} is not connected to a link"
            )
        return port.link.deliver(port, payload, extra_delay)

    # -- event handling -----------------------------------------------------

    def handle_event(self, port_name: str, payload: Any, time: float) -> None:
        """Receive *payload* on *port_name* at simulated *time*.

        Default implementation raises; subclasses that own connected ports
        must override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} ({self.name}) received an event on port "
            f"{port_name!r} but does not implement handle_event()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
