"""Engine statistics and event tracing utilities.

SST ships statistics collection alongside its components; this module
provides the equivalents our experiments and debugging need:

* :class:`EventCounter` — per-component / per-kind event counts collected
  from an engine's trace log,
* :class:`UtilizationTracker` — per-component busy-time accounting, fed
  by the engine's observability hook (attach an
  :class:`~repro.obs.instrument.EngineObs` via ``engine.attach_obs``;
  the run loop times every handler call and credits the destination
  component),
* :func:`event_rate` — events/second of wall clock, the engine's
  throughput metric used in ABL4,
* :func:`trace_digest` — a stable hash of an event trace, the compact
  equality witness used by the determinism / snapshot-restore checks.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from typing import Optional, Sequence

from repro.des.engine import Engine


def trace_digest(trace: Sequence[tuple] | Engine) -> str:
    """SHA-256 of an event trace (or of an engine's ``trace_log``).

    Records hash through ``repr`` of their canonical tuples, so two
    traces share a digest iff they are equal element-for-element —
    including float-exact timestamps.
    """
    log = trace.trace_log if isinstance(trace, Engine) else trace
    acc = hashlib.sha256()
    for rec in log:
        acc.update(repr(tuple(rec)).encode("utf-8"))
    return acc.hexdigest()


class EventCounter:
    """Aggregates an engine's trace log into per-endpoint counts.

    The engine must have been constructed with ``trace=True``.
    """

    def __init__(self, engine: Engine) -> None:
        if not engine.trace:
            raise ValueError("engine was not constructed with trace=True")
        self.engine = engine

    def by_source(self) -> Counter:
        return Counter(src for _, _, _, src, _ in self.engine.trace_log)

    def by_destination(self) -> Counter:
        return Counter(dst for _, _, _, _, dst in self.engine.trace_log)

    def by_pair(self) -> Counter:
        return Counter(
            (src, dst) for _, _, _, src, dst in self.engine.trace_log
        )

    def total(self) -> int:
        return len(self.engine.trace_log)

    def busiest(self, n: int = 5) -> list[tuple[Optional[str], int]]:
        """The *n* components receiving the most events."""
        return self.by_destination().most_common(n)


class UtilizationTracker:
    """Busy-time accounting for simulated components, fed by the engine.

    The engine's observability hook is the (only) producer: with an
    :class:`~repro.obs.instrument.EngineObs` attached, ``Engine.run``
    times each event handler and the adapter drains the per-component
    totals into :meth:`add_busy` at run end — components themselves
    never self-report.  :meth:`utilization` then prices busy time
    against a horizon (typically the run's wall time)::

        obs = engine.attach_obs(EngineObs())
        wall, _ = event_rate(engine, engine.run)
        obs.utilization.report(horizon=wall)
    """

    def __init__(self) -> None:
        self._busy: dict[str, float] = {}

    def add_busy(self, component: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        self._busy[component] = self._busy.get(component, 0.0) + duration

    def busy_time(self, component: str) -> float:
        return self._busy.get(component, 0.0)

    def utilization(self, component: str, horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return min(self.busy_time(component) / horizon, 1.0)

    def report(self, horizon: float) -> dict[str, float]:
        return {
            name: self.utilization(name, horizon) for name in sorted(self._busy)
        }


def event_rate(engine: Engine, run_callable) -> tuple[float, float]:
    """Execute *run_callable* (e.g. ``lambda: engine.run()``) and return
    ``(wall seconds, events per second)``."""
    before = engine.events_fired
    t0 = time.perf_counter()
    run_callable()
    wall = time.perf_counter() - t0
    fired = engine.events_fired - before
    return wall, (fired / wall if wall > 0 else float("inf"))
