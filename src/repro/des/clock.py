"""Periodic clocks, mirroring SST's clock handler registration.

A clock repeatedly invokes a handler at a fixed period until the handler
returns ``True`` (SST convention for "unregister me") or the clock is
stopped explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.des.event import PRIORITY_CLOCK, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.component import Component


class Clock:
    """A periodic callback attached to a component.

    Parameters
    ----------
    component:
        Owner; the clock uses its scheduling facilities.
    period:
        Seconds between ticks; must be > 0.
    handler:
        Called as ``handler(cycle, time)``; return ``True`` to stop.
    start_delay:
        Delay before the first tick (defaults to one period).
    """

    def __init__(
        self,
        component: "Component",
        period: float,
        handler: Callable[[int, float], Optional[bool]],
        start_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"clock period must be > 0, got {period!r}")
        self.component = component
        self.period = float(period)
        self.handler = handler
        self.cycle = 0
        self.running = True
        first = self.period if start_delay is None else float(start_delay)
        self._pending = component.schedule(
            first, self._tick, priority=PRIORITY_CLOCK
        )

    def _tick(self, _ev: Event) -> None:
        if not self.running:
            return
        self.cycle += 1
        done = self.handler(self.cycle, self.component.now)
        if done or not self.running:
            self.running = False
            return
        self._pending = self.component.schedule(
            self.period, self._tick, priority=PRIORITY_CLOCK
        )

    def stop(self) -> None:
        """Stop the clock; any pending tick is cancelled."""
        self.running = False
        if self._pending is not None and self.component.engine is not None:
            # Engine.cancel keeps queue accounting exact and is idempotent.
            self.component.engine.cancel(self._pending)
