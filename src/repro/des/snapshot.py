"""Versioned engine snapshots: capture, persist, restore, auto-cadence.

A :class:`Snapshot` is a self-describing capture of a simulation object
graph — typically an :class:`~repro.des.engine.Engine` (the snapshot
walks every reference: event queue with its sequence counter and
cancelled-count accounting, components, clocks, link registrations and
the per-component RNG bit-generator states) or a
:class:`~repro.core.simulator.BESSTSimulator` (whose graph includes its
engine, ranks, recovery state and fault injector).

Restoring a snapshot and continuing produces an event trace
byte-identical to an uninterrupted run: the queue's ``(time, priority,
seq)`` total order, the sequence counter and every RNG stream resume
exactly where they stopped.  That invariant is what lets a killed
replica resume mid-simulation instead of from ``t=0`` (the same
guarantee PR 2 established for whole campaigns, pushed down into the
simulator).

Persistence is torn-write safe: :meth:`Snapshot.save` writes a magic
line, a JSON header carrying the format version and a SHA-256 payload
checksum, then the pickled payload — all through a temp file and one
atomic :func:`os.replace`.  :meth:`Snapshot.load` refuses truncated,
corrupt or version-mismatched files with :class:`SnapshotError`, so a
resume can always fall back to the previous snapshot (or a fresh run)
rather than continue from damaged state.

:class:`SnapshotStore` manages a directory of numbered snapshots with
bounded retention; :class:`AutoSnapshotPolicy` gives an engine a
periodic (event-count and/or wall-clock) snapshot cadence during
``run()``.

Snapshots pickle the object graph, so every event handler reachable
from the queue must be picklable: bound methods and module-level
callables work, ad-hoc lambdas and closures do not (the engine raises
:class:`SnapshotError` naming the offender).  All handlers scheduled by
``repro`` itself are picklable by construction.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import pickletools
import tempfile
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.guard.fsfault import fault_check, fsync_dir

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Engine

#: Current snapshot format version; bumped on incompatible changes.
SNAPSHOT_VERSION = 1

#: First line of every snapshot file.
SNAPSHOT_MAGIC = b"repro-snapshot\n"


class SnapshotError(RuntimeError):
    """Capture, persistence or restore of a snapshot failed."""


@dataclass
class Snapshot:
    """One captured simulation state.

    Attributes
    ----------
    meta:
        JSON-serializable description: format ``version``, ``root``
        class name, simulation ``sim_time`` / ``events_fired`` at
        capture, and any user-supplied entries.
    payload:
        The pickled object graph.
    """

    meta: dict
    payload: bytes

    # -- capture ---------------------------------------------------------------

    @classmethod
    def capture(cls, root, meta: Optional[dict] = None) -> "Snapshot":
        """Snapshot *root* (an engine, a simulator, any picklable graph)."""
        try:
            payload = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SnapshotError(
                f"cannot snapshot {type(root).__name__}: {exc} — every "
                "scheduled event handler must be picklable (use bound "
                "methods or module-level callables, not lambdas/closures)"
            ) from exc
        header = {
            "version": SNAPSHOT_VERSION,
            "root": type(root).__name__,
            "sim_time": _maybe_float(getattr(root, "now", None)),
            "events_fired": getattr(root, "events_fired", None),
        }
        if meta:
            header.update(meta)
        return cls(meta=header, payload=payload)

    # -- restore ---------------------------------------------------------------

    def restore(self):
        """Rebuild and return the captured object graph."""
        if self.meta.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {self.meta.get('version')!r} is not "
                f"supported (expected {SNAPSHOT_VERSION})"
            )
        t0 = time.perf_counter()
        try:
            root = pickle.loads(self.payload)
        except Exception as exc:
            raise SnapshotError(f"snapshot payload is corrupt: {exc}") from exc
        _record_snapshot_metrics("restore", time.perf_counter() - t0)
        return root

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> str:
        """Durably write the snapshot to *path* (atomic replace + fsync)."""
        header = dict(self.meta)
        header["sha256"] = hashlib.sha256(self.payload).hexdigest()
        header["payload_bytes"] = len(self.payload)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        fault_check("snapshot.write", path, len(self.payload))
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-", suffix=".snap")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(SNAPSHOT_MAGIC)
                fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
                fh.write(self.payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            fsync_dir(parent)  # make the rename itself crash-durable
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        """Read and integrity-check a snapshot file."""
        try:
            with open(path, "rb") as fh:
                magic = fh.readline()
                if magic != SNAPSHOT_MAGIC:
                    raise SnapshotError(f"{path!r} is not a snapshot file")
                header_line = fh.readline()
                payload = fh.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
        try:
            meta = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot {path!r} has a corrupt header") from exc
        if meta.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot {path!r} has version {meta.get('version')!r}, "
                f"expected {SNAPSHOT_VERSION}"
            )
        if len(payload) != meta.get("payload_bytes"):
            raise SnapshotError(
                f"snapshot {path!r} is truncated "
                f"({len(payload)} of {meta.get('payload_bytes')} bytes)"
            )
        if hashlib.sha256(payload).hexdigest() != meta.get("sha256"):
            raise SnapshotError(f"snapshot {path!r} failed checksum verification")
        return cls(meta=meta, payload=payload)

    def size_bytes(self) -> int:
        return len(self.payload)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        buf = io.StringIO()
        pickletools.dis(self.payload, out=buf)
        return buf.getvalue()


def _maybe_float(value) -> Optional[float]:
    return None if value is None else float(value)


def _record_snapshot_metrics(op: str, seconds: float, nbytes: Optional[int] = None) -> None:
    """Rare-path telemetry into the process-global obs registry.

    Imported lazily: snapshots happen at most every few thousand events,
    so a ``sys.modules`` lookup here keeps :mod:`repro.des` free of an
    import-time dependency on the obs layer.
    """
    from repro.obs.metrics import get_registry

    reg = get_registry()
    reg.counter(
        f"snapshot_{op}s_total", help=f"Snapshot {op} operations."
    ).inc()
    reg.quantile(
        f"snapshot_{op}_seconds", help=f"Snapshot {op} latency (seconds)."
    ).observe(seconds)
    if nbytes is not None:
        reg.counter(
            "snapshot_bytes_written_total",
            help="Snapshot payload bytes persisted to disk.",
        ).inc(nbytes)


class SnapshotStore:
    """A directory of numbered snapshots with bounded retention.

    Files are named ``snap-<events_fired>.snap``; :meth:`latest` returns
    the newest *loadable* snapshot path, skipping files that fail
    integrity checks, so one torn write never blocks recovery.
    """

    def __init__(self, directory: str, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep

    def write(self, snapshot: Snapshot) -> str:
        """Persist *snapshot* and prune beyond the retention bound."""
        stamp = snapshot.meta.get("events_fired") or 0
        path = os.path.join(self.directory, f"snap-{int(stamp):012d}.snap")
        t0 = time.perf_counter()
        snapshot.save(path)
        _record_snapshot_metrics(
            "write", time.perf_counter() - t0, nbytes=snapshot.size_bytes()
        )
        for stale in self.paths()[: -self.keep]:
            if stale != path:
                try:
                    os.unlink(stale)
                except OSError:  # pragma: no cover - concurrent prune
                    pass
        return path

    def paths(self) -> list[str]:
        """All snapshot files, oldest first."""
        if not os.path.isdir(self.directory):
            return []
        names = sorted(
            n
            for n in os.listdir(self.directory)
            if n.startswith("snap-") and n.endswith(".snap")
        )
        return [os.path.join(self.directory, n) for n in names]

    def latest(self) -> Optional[str]:
        """Newest loadable snapshot path, or ``None``.

        Corrupt files are skipped — but *counted* (the
        ``snapshot_corrupt_skipped_total`` counter, surfaced by
        ``repro metrics summarize``): silent data loss is still loss.
        """
        for path in reversed(self.paths()):
            try:
                Snapshot.load(path)
            except SnapshotError:
                self._count_corrupt_skip(path)
                continue
            return path
        return None

    @staticmethod
    def _count_corrupt_skip(path: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "snapshot_corrupt_skipped_total",
            help="Snapshot files skipped during recovery because they "
            "failed integrity checks.",
        ).inc()

    def load_latest(self) -> Optional[Snapshot]:
        path = self.latest()
        return Snapshot.load(path) if path is not None else None

    def shed_oldest(self, keep: int = 1) -> int:
        """Degradation-ladder stage action: free disk by deleting all but
        the newest *keep* snapshots.  Returns how many were removed."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        shed = 0
        for path in self.paths()[:-keep]:
            try:
                os.unlink(path)
                shed += 1
            except OSError:  # pragma: no cover - concurrent prune
                pass
        return shed

    def clear(self) -> None:
        """Delete every snapshot in the store (e.g. after completion)."""
        for path in self.paths():
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass


@dataclass
class AutoSnapshotPolicy:
    """Periodic snapshot cadence applied inside ``Engine.run()``.

    Parameters
    ----------
    store:
        Destination :class:`SnapshotStore`.
    every_events:
        Snapshot after this many fired events (``None`` disables).
    every_wall_s:
        Snapshot after this much wall-clock time (``None`` disables).
    root:
        Object graph to capture; defaults to the engine itself.  A
        higher-level owner (e.g. a ``BESSTSimulator``) passes itself so
        a restore rebuilds the full simulator, not just its engine.
    """

    store: SnapshotStore
    every_events: Optional[int] = None
    every_wall_s: Optional[float] = None
    root: object = None
    snapshots_taken: int = 0
    _events_at_last: int = field(default=0, repr=False)
    _wall_at_last: Optional[float] = field(default=None, repr=False)
    _stretched: bool = field(default=False, repr=False)
    _base_every_events: Optional[int] = field(default=None, repr=False)
    _base_every_wall_s: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_wall_s is None:
            raise ValueError("set every_events and/or every_wall_s")
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {self.every_events}")
        if self.every_wall_s is not None and self.every_wall_s <= 0:
            raise ValueError(f"every_wall_s must be > 0, got {self.every_wall_s}")

    def due(self, engine: "Engine") -> bool:
        if (
            self.every_events is not None
            and engine.events_fired - self._events_at_last >= self.every_events
        ):
            return True
        if self.every_wall_s is not None:
            now = time.monotonic()
            if self._wall_at_last is None:
                self._wall_at_last = now
            elif now - self._wall_at_last >= self.every_wall_s:
                return True
        return False

    def take(self, engine: "Engine") -> str:
        """Capture and persist one snapshot; returns the written path."""
        root = self.root if self.root is not None else engine
        # Stamp with the engine's clock even when the captured root is a
        # higher-level owner without now/events_fired of its own.
        path = self.store.write(
            Snapshot.capture(
                root,
                meta={
                    "sim_time": float(engine.now),
                    "events_fired": engine.events_fired,
                },
            )
        )
        self.snapshots_taken += 1
        self._events_at_last = engine.events_fired
        self._wall_at_last = time.monotonic()
        return path

    def maybe_take(self, engine: "Engine") -> Optional[str]:
        return self.take(engine) if self.due(engine) else None

    def stretch(self, factor: float) -> None:
        """Degradation-ladder stage action: multiply the cadence by
        *factor* (fewer snapshots → less disk churn).  Idempotent-safe:
        the original cadence is remembered once, for
        :meth:`restore_cadence` on ladder recovery."""
        if factor <= 1.0:
            raise ValueError(f"stretch factor must be > 1, got {factor}")
        if not self._stretched:
            self._stretched = True
            self._base_every_events = self.every_events
            self._base_every_wall_s = self.every_wall_s
        if self.every_events is not None:
            self.every_events = max(1, int(self.every_events * factor))
        if self.every_wall_s is not None:
            self.every_wall_s = self.every_wall_s * factor

    def restore_cadence(self) -> None:
        """Undo :meth:`stretch` (ladder stage exit)."""
        if self._stretched:
            self.every_events = self._base_every_events
            self.every_wall_s = self._base_every_wall_s
            self._stretched = False

    #: how often (in fired events) a wall-clock-only cadence is polled
    WALL_CHECK_STRIDE = 1024

    def next_check_at(self, events_fired: int) -> float:
        """Events-fired count at which the engine must next call
        :meth:`maybe_take` — lets the run loop reduce the cadence test
        to a single integer comparison per event."""
        nxt = float("inf")
        if self.every_events is not None:
            nxt = self._events_at_last + self.every_events
        if self.every_wall_s is not None:
            nxt = min(nxt, events_fired + self.WALL_CHECK_STRIDE)
        return nxt

    def __getstate__(self) -> dict:
        # Wall-clock anchors are meaningless in another process/epoch.
        state = dict(self.__dict__)
        state["_wall_at_last"] = None
        return state
