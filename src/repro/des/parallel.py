"""Conservative parallel discrete-event engine (YAWNS-style windows).

SST executes its component graph across MPI ranks using conservative
synchronisation: because every cross-rank interaction crosses a link with
non-zero latency, each rank may safely process all events in the window
``[t, t + lookahead)`` without hearing from its peers, where ``lookahead``
is the minimum cross-rank link latency.  At each window boundary the ranks
exchange the remote events they generated.

This class reproduces that algorithm with in-process partitions.  Each
partition owns a private event queue; windows are computed from the global
minimum next-event time; partitions are processed one after another inside
a window (which is legitimate precisely because the conservative invariant
guarantees they cannot affect each other within the window).  The result
is, by construction, identical to the sequential engine's — a property the
test suite checks event-trace-for-event-trace.

**Partition failover.**  With :meth:`ParallelEngine.enable_failover`, the
engine additionally simulates *rank failures* the way fault-tolerant PDES
systems (D'Angelo et al.) handle them: a failure process (reusing the
campaign's :class:`~repro.core.fault_injection.FaultModel` draws) kills a
partition during a window; the loss is detected at the window boundary;
the engine restores itself from the snapshot it captured at the start of
that window, optionally migrates the dead partition's components onto the
survivors (:func:`~repro.des.partition.migrate_assignment`), recomputes
the lookahead, and re-executes.  Because the restore rewinds every queue,
clock, counter and RNG stream to the boundary, the recovered run's event
trace is byte-identical to a failure-free run — the same invariant the
sequential engine's snapshot/restore provides, proven by
``tests/des/test_failover.py``.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Callable, Mapping, Optional

import numpy as np

from repro.des.engine import Engine, SimulationError
from repro.des.event import Event, EventQueue
from repro.des.snapshot import Snapshot


class PartitionFailover:
    """Simulated rank-failure process for :class:`ParallelEngine`.

    Parameters
    ----------
    model:
        Failure process with ``draw_interarrival(rng, n) -> float`` —
        e.g. :class:`repro.core.fault_injection.FaultModel` (duck-typed
        so the DES layer stays import-independent of ``repro.core``).
    seed:
        Private RNG seed.  Failure draws deliberately live *outside*
        engine snapshots: restoring a window must not rewind the failure
        stream, or the same failure would recur forever.
    migrate:
        When true, a failed partition's components are rebalanced onto
        the survivors (the partition stays dead); when false, the
        partition itself restarts from the boundary snapshot (a
        transient rank crash).
    max_failures:
        Stop injecting after this many failures.
    """

    def __init__(
        self,
        model,
        seed: int = 0,
        migrate: bool = True,
        max_failures: int = 4,
    ) -> None:
        if max_failures < 0:
            raise ValueError(f"max_failures must be >= 0, got {max_failures}")
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.migrate = migrate
        self.max_failures = max_failures
        #: partitions permanently lost (``migrate=True`` only)
        self.failed_parts: set[int] = set()
        # telemetry
        self.failures_injected = 0
        self.restores = 0
        self.migrations = 0
        self.failure_log: list[tuple[float, int]] = []  #: (sim time, partition)
        self._next_at: Optional[float] = None

    def _live_parts(self, engine: "ParallelEngine") -> list[int]:
        """Partitions that own at least one component and are not dead."""
        owning = set((engine._assignment or {}).values())
        return sorted(owning - self.failed_parts)

    def poll(
        self, engine: "ParallelEngine", t_start: float, window_end: float
    ) -> Optional[tuple[int, float]]:
        """Did a rank fail before *window_end*?  Returns (victim, time)."""
        if self.failures_injected >= self.max_failures:
            return None
        live = self._live_parts(engine)
        if len(live) < 2:
            return None  # nobody to fail over to (or onto)
        if self._next_at is None:
            self._next_at = t_start + float(
                self.model.draw_interarrival(self.rng, len(live))
            )
        if self._next_at >= window_end:
            return None
        t_fail = self._next_at
        victim = int(live[int(self.rng.integers(0, len(live)))])
        self._next_at = None  # redrawn from the post-recovery boundary
        self.failures_injected += 1
        self.failure_log.append((t_fail, victim))
        return victim, t_fail

    def apply(self, engine: "ParallelEngine", victim: int) -> None:
        """Post-restore recovery: kill-and-migrate, or restart in place."""
        self.restores += 1
        if self.migrate:
            self.failed_parts.add(victim)
            engine._migrate_partition(victim, self.failed_parts)
            self.migrations += 1


class ParallelEngine(Engine):
    """Partitioned conservative engine.

    Parameters
    ----------
    nparts:
        Number of partitions ("virtual ranks").  Must not exceed the
        number of registered components at ``run()`` time.
    partitioner:
        Optional callable ``(names, nparts, edges) -> {name: part}``.  By
        default a contiguous block partition over sorted names is used.
        A precomputed mapping may also be supplied via *assignment*.
    assignment:
        Optional explicit ``{component name: partition}`` mapping; wins
        over *partitioner*.
    """

    def __init__(
        self,
        nparts: int = 2,
        seed: int = 0,
        trace: bool = False,
        partitioner: Optional[Callable] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(seed=seed, trace=trace)
        if nparts < 1:
            raise SimulationError(f"nparts must be >= 1, got {nparts}")
        self.nparts = nparts
        self._partitioner = partitioner
        self._assignment: Optional[dict[str, int]] = (
            dict(assignment) if assignment is not None else None
        )
        self._queues: list[EventQueue] = []
        self.lookahead: float = float("inf")
        self.windows_executed = 0
        self._active_part: Optional[int] = None
        self._window_end: float = float("inf")
        #: partition receiving engine-level (``dst=None``) events; moves
        #: to the lowest live partition when partition 0 fails over
        self._home_part = 0
        self._failover: Optional[PartitionFailover] = None

    # -- event routing -------------------------------------------------------

    def _part_of(self, name: Optional[str]) -> int:
        if self._assignment is None:
            return self._home_part
        if name is None:
            return self._home_part
        return self._assignment.get(name, self._home_part)

    def schedule_event(self, event: Event) -> Event:
        if event.time < self.now:
            raise SimulationError(
                f"event scheduled in the past: {event.time} < now={self.now}"
            )
        if not self._queues:
            # Not yet running: stage through the base queue; run() will
            # distribute staged events to partition queues.
            return self.queue.push(event)
        target = self._part_of(event.dst)
        if (
            self._active_part is not None
            and target != self._active_part
            and event.time < self._window_end
        ):
            # A conservative engine must never receive an event inside the
            # current safe window from another partition.
            raise SimulationError(
                "conservative violation: cross-partition event at "
                f"t={event.time} inside window ending {self._window_end} "
                f"({event.src} -> {event.dst}); link latency below lookahead?"
            )
        if event.seq < 0:
            event.seq = self.queue.take_seq()
        return self._queues[target].push(event)

    # -- lookahead -----------------------------------------------------------

    def _compute_lookahead(self) -> float:
        assert self._assignment is not None
        la = float("inf")
        for link in self.links:
            pa = self._part_of(link.a.component.name)
            pb = self._part_of(link.b.component.name)
            if pa != pb:
                if link.latency <= 0.0:
                    raise SimulationError(
                        f"zero-latency cross-partition link {link.name!r} "
                        f"(partition {pa} <-> {pb}): conservative windows "
                        "require strictly positive lookahead — raise the "
                        "link latency or co-locate its endpoints"
                    )
                la = min(la, link.latency)
        return la

    def _edge_triples(self) -> list[tuple[str, str, float]]:
        return [
            (ln.a.component.name, ln.b.component.name, ln.latency)
            for ln in self.links
        ]

    # -- failover ------------------------------------------------------------

    def enable_failover(
        self,
        model,
        seed: int = 0,
        migrate: bool = True,
        max_failures: int = 4,
    ) -> PartitionFailover:
        """Inject simulated partition failures at window boundaries.

        *model* supplies interarrival draws (duck-typed
        :class:`~repro.core.fault_injection.FaultModel`).  Failures are
        detected at the boundary of the window they land in; the engine
        restores from its boundary snapshot, optionally migrates the
        victim's components onto surviving partitions, and re-executes —
        producing a final event trace identical to a failure-free run.
        """
        if self._running:
            raise SimulationError("cannot enable failover while running")
        self._failover = PartitionFailover(
            model, seed=seed, migrate=migrate, max_failures=max_failures
        )
        return self._failover

    def _migrate_partition(self, victim: int, dead: set[int]) -> None:
        """Rebalance the victim's components and queue onto survivors."""
        from repro.des.partition import migrate_assignment

        assert self._assignment is not None
        self._assignment = migrate_assignment(self._assignment, victim, dead)
        live = sorted(set(self._assignment.values()))
        self._home_part = live[0] if live else 0
        # Re-route the victim's pending events to their components' new
        # homes (sequence numbers ride along, so global ordering holds).
        stranded = self._queues[victim]
        while stranded:
            ev = stranded.pop()
            self._queues[self._part_of(ev.dst)].push(ev)
        self.lookahead = self._compute_lookahead()

    def _restore_in_place(self, snap: Snapshot) -> None:
        """Rewind this engine to *snap* without changing its identity.

        The failure stream, journal and auto-snapshot policy survive the
        rewind (a restored failure RNG would re-draw the same failure
        forever; the journal holds an open file handle).
        """
        keep_failover = self._failover
        keep_journal = self._journal
        keep_autosnap = self._autosnap
        keep_obs = self._obs
        restored = snap.restore()
        self.__dict__.clear()
        self.__dict__.update(restored.__dict__)
        self._failover = keep_failover
        self._journal = keep_journal
        self._autosnap = keep_autosnap
        self._obs = keep_obs
        self._running = True
        for comp in self.components.values():
            comp.engine = self

    # -- execution -----------------------------------------------------------

    def _prepare_run(self) -> None:
        if self.nparts > len(self.components):
            raise SimulationError(
                f"nparts={self.nparts} exceeds the {len(self.components)} "
                "registered component(s); every partition must own at "
                "least one component — reduce nparts or register more "
                "components"
            )
        if self._assignment is None:
            names = list(self.components)
            if self._partitioner is not None:
                self._assignment = dict(
                    self._partitioner(names, self.nparts, self._edge_triples())
                )
            else:
                from repro.des.partition import partition_components

                self._assignment = partition_components(
                    names, self.nparts, method="block"
                )
        self.lookahead = self._compute_lookahead()
        if not self._queues:
            self._queues = [EventQueue() for _ in range(self.nparts)]
            for comp in self.components.values():
                comp.setup()
            self._setup_done = True
            # Distribute events staged before run() started.
            while self.queue:
                ev = self.queue.pop()
                self._queues[self._part_of(ev.dst)].push(ev)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        obs = self._obs
        if obs is not None:
            obs.run_started(self)
        try:
            self._prepare_run()
            end = float("inf") if until is None else float(until)
            fired_this_run = 0
            while True:
                t_min = min(q.peek_time() for q in self._queues)
                if t_min == float("inf") or t_min > end:
                    break
                # nextafter(end) lets events scheduled exactly at the end
                # horizon fire, matching the sequential engine's `t > end`
                # stop rule.
                window_end = min(t_min + self.lookahead, math.nextafter(end, math.inf))
                boundary: Optional[Snapshot] = None
                if self._failover is not None:
                    boundary = self.snapshot()
                self._window_end = window_end
                self.windows_executed += 1
                journal_buffer: list[Event] = []
                fired_this_run = self._execute_window(
                    window_end, end, max_events, fired_this_run, journal_buffer
                )
                self._active_part = None
                if self._failover is not None and boundary is not None:
                    failure = self._failover.poll(self, t_min, window_end)
                    if failure is not None:
                        victim, _t_fail = failure
                        # The window's work on the victim is lost: rewind
                        # everything to the boundary, recover, re-execute.
                        # (The journal buffer is discarded with it.)
                        self._restore_in_place(boundary)
                        self._failover.apply(self, victim)
                        continue
                if self._journal is not None:
                    for ev in journal_buffer:
                        self._journal.record(ev)
                # Global clock advances to the end of the processed window.
                if window_end != float("inf"):
                    self.now = max(self.now, min(window_end, end))
                if self._autosnap is not None:
                    self._autosnap.maybe_take(self)
            if until is not None and end != float("inf"):
                self.now = max(self.now, end)
            empty = all(not q for q in self._queues)
            if not self._finished and empty:
                for comp in self.components.values():
                    comp.finish()
                self._finished = True
            return self.now
        finally:
            if obs is not None:
                obs.run_finished(self)
            self._running = False
            self._active_part = None

    def _execute_window(
        self,
        window_end: float,
        end: float,
        max_events: Optional[int],
        fired_this_run: int,
        journal_buffer: list,
    ) -> int:
        """Process one safe window across every partition queue."""
        obs = self._obs
        obs_busy = obs.busy if obs is not None else None
        for part, q in enumerate(self._queues):
            self._active_part = part
            while True:
                t = q.peek_time()
                if t == float("inf") or t >= window_end or t > end:
                    break
                if max_events is not None and fired_this_run >= max_events:
                    # Same accounting as the sequential engine: the
                    # limit trips before the pop, so events_fired
                    # only counts events whose handlers ran.  Windows
                    # re-executed after a failover count again — the
                    # budget bounds *work*, not unique events.
                    raise SimulationError(f"exceeded max_events={max_events}")
                ev = q.pop()
                self.now = ev.time
                self.events_fired += 1
                fired_this_run += 1
                if self.trace:
                    self.trace_log.append(
                        (ev.time, ev.priority, ev.seq, ev.src, ev.dst)
                    )
                if self._journal is not None:
                    # Buffered: a failover rewind discards the window's
                    # records so the append-only journal never holds a
                    # rolled-back prefix.
                    journal_buffer.append(ev)
                if ev.handler is not None:
                    if obs_busy is None:
                        ev.handler(ev)
                    else:
                        _t0 = perf_counter()
                        ev.handler(ev)
                        _dst = ev.dst or ""
                        obs_busy[_dst] = (
                            obs_busy.get(_dst, 0.0) + perf_counter() - _t0
                        )
                        if not (self.events_fired & 63):
                            obs.queue_depth.observe(len(q))
        return fired_this_run
