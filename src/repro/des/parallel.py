"""Conservative parallel discrete-event engine (YAWNS-style windows).

SST executes its component graph across MPI ranks using conservative
synchronisation: because every cross-rank interaction crosses a link with
non-zero latency, each rank may safely process all events in the window
``[t, t + lookahead)`` without hearing from its peers, where ``lookahead``
is the minimum cross-rank link latency.  At each window boundary the ranks
exchange the remote events they generated.

This class reproduces that algorithm with in-process partitions.  Each
partition owns a private event queue; windows are computed from the global
minimum next-event time; partitions are processed one after another inside
a window (which is legitimate precisely because the conservative invariant
guarantees they cannot affect each other within the window).  The result
is, by construction, identical to the sequential engine's — a property the
test suite checks event-trace-for-event-trace.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Optional

from repro.des.engine import Engine, SimulationError
from repro.des.event import Event, EventQueue


class ParallelEngine(Engine):
    """Partitioned conservative engine.

    Parameters
    ----------
    nparts:
        Number of partitions ("virtual ranks").
    partitioner:
        Optional callable ``(names, nparts, edges) -> {name: part}``.  By
        default a contiguous block partition over sorted names is used.
        A precomputed mapping may also be supplied via *assignment*.
    assignment:
        Optional explicit ``{component name: partition}`` mapping; wins
        over *partitioner*.
    """

    def __init__(
        self,
        nparts: int = 2,
        seed: int = 0,
        trace: bool = False,
        partitioner: Optional[Callable] = None,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(seed=seed, trace=trace)
        if nparts < 1:
            raise SimulationError(f"nparts must be >= 1, got {nparts}")
        self.nparts = nparts
        self._partitioner = partitioner
        self._assignment: Optional[dict[str, int]] = (
            dict(assignment) if assignment is not None else None
        )
        self._queues: list[EventQueue] = []
        self.lookahead: float = float("inf")
        self.windows_executed = 0
        self._active_part: Optional[int] = None
        self._window_end: float = float("inf")

    # -- event routing -------------------------------------------------------

    def _part_of(self, name: Optional[str]) -> int:
        if name is None or self._assignment is None:
            return 0
        return self._assignment.get(name, 0)

    def schedule_event(self, event: Event) -> Event:
        if event.time < self.now:
            raise SimulationError(
                f"event scheduled in the past: {event.time} < now={self.now}"
            )
        if not self._queues:
            # Not yet running: stage through the base queue; run() will
            # distribute staged events to partition queues.
            return self.queue.push(event)
        target = self._part_of(event.dst)
        if (
            self._active_part is not None
            and target != self._active_part
            and event.time < self._window_end
        ):
            # A conservative engine must never receive an event inside the
            # current safe window from another partition.
            raise SimulationError(
                "conservative violation: cross-partition event at "
                f"t={event.time} inside window ending {self._window_end} "
                f"({event.src} -> {event.dst}); link latency below lookahead?"
            )
        if event.seq < 0:
            event.seq = next(self.queue._counter)
        return self._queues[target].push(event)

    # -- lookahead -----------------------------------------------------------

    def _compute_lookahead(self) -> float:
        assert self._assignment is not None
        la = float("inf")
        for link in self.links:
            pa = self._part_of(link.a.component.name)
            pb = self._part_of(link.b.component.name)
            if pa != pb:
                la = min(la, link.latency)
        return la

    def _edge_triples(self) -> list[tuple[str, str, float]]:
        return [
            (ln.a.component.name, ln.b.component.name, ln.latency)
            for ln in self.links
        ]

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            if self._assignment is None:
                names = list(self.components)
                if self._partitioner is not None:
                    self._assignment = dict(
                        self._partitioner(names, self.nparts, self._edge_triples())
                    )
                else:
                    from repro.des.partition import partition_components

                    self._assignment = partition_components(
                        names, self.nparts, method="block"
                    )
            self.lookahead = self._compute_lookahead()
            if not self._queues:
                self._queues = [EventQueue() for _ in range(self.nparts)]
                for comp in self.components.values():
                    comp.setup()
                self._setup_done = True
                # Distribute events staged before run() started.
                while self.queue:
                    ev = self.queue.pop()
                    self._queues[self._part_of(ev.dst)].push(ev)

            end = float("inf") if until is None else float(until)
            fired_this_run = 0
            while True:
                t_min = min(q.peek_time() for q in self._queues)
                if t_min == float("inf") or t_min > end:
                    break
                # nextafter(end) lets events scheduled exactly at the end
                # horizon fire, matching the sequential engine's `t > end`
                # stop rule.
                window_end = min(t_min + self.lookahead, math.nextafter(end, math.inf))
                self._window_end = window_end
                self.windows_executed += 1
                for part, q in enumerate(self._queues):
                    self._active_part = part
                    while True:
                        t = q.peek_time()
                        if t == float("inf") or t >= window_end or t > end:
                            break
                        if max_events is not None and fired_this_run >= max_events:
                            # Same accounting as the sequential engine: the
                            # limit trips before the pop, so events_fired
                            # only counts events whose handlers ran.
                            raise SimulationError(
                                f"exceeded max_events={max_events}"
                            )
                        ev = q.pop()
                        self.now = ev.time
                        self.events_fired += 1
                        fired_this_run += 1
                        if self.trace:
                            self.trace_log.append(
                                (ev.time, ev.priority, ev.seq, ev.src, ev.dst)
                            )
                        if ev.handler is not None:
                            ev.handler(ev)
                self._active_part = None
                # Global clock advances to the end of the processed window.
                if window_end != float("inf"):
                    self.now = max(self.now, min(window_end, end))
            if until is not None and end != float("inf"):
                self.now = max(self.now, end)
            empty = all(not q for q in self._queues)
            if not self._finished and empty:
                for comp in self.components.values():
                    comp.finish()
                self._finished = True
            return self.now
        finally:
            self._running = False
            self._active_part = None
