"""Latency-bearing links between component ports.

A link is the only way payloads cross component boundaries, exactly as in
SST.  The minimum link latency between partitions is what gives the
conservative parallel engine its lookahead window, so links enforce a
strictly positive latency.
"""

from __future__ import annotations

from typing import Any

from repro.des.component import Port
from repro.des.event import PRIORITY_NORMAL, Event


class LinkDownError(RuntimeError):
    """A payload was offered to a link that has failed."""


class _Delivery:
    """Arrival handler for one in-flight payload.

    A class (not a closure) so pending deliveries survive engine
    snapshots: pickling the event queue pickles these handlers along
    with the components they target.
    """

    __slots__ = ("component", "port_name")

    def __init__(self, component, port_name: str) -> None:
        self.component = component
        self.port_name = port_name

    def __call__(self, ev: Event) -> None:
        self.component.handle_event(self.port_name, ev.payload, ev.time)

    def __getstate__(self) -> tuple:
        return (self.component, self.port_name)

    def __setstate__(self, state: tuple) -> None:
        self.component, self.port_name = state


class Link:
    """A bidirectional point-to-point connection with fixed base latency.

    Parameters
    ----------
    a, b:
        The two endpoint ports.  Each port may belong to only one link.
    latency:
        Base one-way delivery delay in seconds; must be > 0 (conservative
        parallel simulation requires non-zero lookahead).
    name:
        Optional label for tracing.
    on_fail:
        What :meth:`deliver` does while the link is failed: ``"raise"``
        (default) raises :class:`LinkDownError`, ``"drop"`` silently
        discards the payload and returns None.  Either way the behaviour
        is deterministic; payloads already in flight when :meth:`fail`
        is called still arrive (the bits left the failed segment before
        it went down).
    """

    def __init__(
        self, a: Port, b: Port, latency: float, name: str = "", on_fail: str = "raise"
    ) -> None:
        if latency <= 0.0:
            raise ValueError(f"link latency must be > 0, got {latency!r}")
        if on_fail not in ("raise", "drop"):
            raise ValueError(f"on_fail must be 'raise' or 'drop', got {on_fail!r}")
        if a.link is not None or b.link is not None:
            raise ValueError("port already connected to a link")
        if a.component.engine is None or b.component.engine is None:
            raise ValueError("both components must be registered before linking")
        if a.component.engine is not b.component.engine:
            raise ValueError("cannot link components from different engines")
        self.a = a
        self.b = b
        self.latency = float(latency)
        self.name = name or f"{a.component.name}.{a.name}<->{b.component.name}.{b.name}"
        self.on_fail = on_fail
        self.failed = False
        a.link = self
        b.link = self
        a.component.engine._register_link(self)

    def fail(self) -> None:
        """Take the link down.  In-flight deliveries still arrive; new
        :meth:`deliver` calls raise or drop per ``on_fail``."""
        self.failed = True

    def repair(self) -> None:
        """Bring the link back into service."""
        self.failed = False

    def other(self, port: Port) -> Port:
        """The opposite endpoint of *port*."""
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ValueError(f"{port!r} is not an endpoint of {self.name}")

    def deliver(
        self, from_port: Port, payload: Any, extra_delay: float = 0.0
    ) -> Event | None:
        """Schedule delivery of *payload* from *from_port* to its peer.

        Raises :class:`LinkDownError` (or returns None with
        ``on_fail="drop"``) while the link is failed.
        """
        if extra_delay < 0:
            raise ValueError(f"negative extra_delay {extra_delay!r}")
        if self.failed:
            if self.on_fail == "drop":
                return None
            raise LinkDownError(f"link {self.name} is down")
        dst_port = self.other(from_port)
        dst_comp = dst_port.component
        engine = from_port.component.engine
        assert engine is not None
        ev = Event(
            time=engine.now + self.latency + extra_delay,
            handler=_Delivery(dst_comp, dst_port.name),
            payload=payload,
            priority=PRIORITY_NORMAL,
            src=from_port.component.name,
            dst=dst_comp.name,
        )
        return engine.schedule_event(ev)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, latency={self.latency})"


def connect(
    comp_a, port_a: str, comp_b, port_b: str, latency: float, name: str = ""
) -> Link:
    """Convenience wrapper: ``Link(comp_a.port(port_a), comp_b.port(port_b))``."""
    return Link(comp_a.port(port_a), comp_b.port(port_b), latency, name=name)
