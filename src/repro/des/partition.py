"""Partitioning of components for the conservative parallel engine.

SST partitions its component graph across MPI ranks; we reproduce the same
step for :class:`~repro.des.parallel.ParallelEngine`.  Three strategies are
provided:

* ``"block"`` — contiguous blocks in sorted-name order (good for rank
  arrays where neighbours talk to neighbours),
* ``"round_robin"`` — striped assignment,
* ``"graph"`` — recursive Kernighan–Lin bisection over the link graph,
  minimising cross-partition links (and therefore maximising lookahead
  window quality).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import networkx as nx


def partition_components(
    names: Iterable[str],
    nparts: int,
    edges: Optional[Sequence[tuple[str, str, float]]] = None,
    method: str = "block",
) -> dict[str, int]:
    """Assign each component name to a partition index in ``[0, nparts)``.

    Parameters
    ----------
    names:
        Component names (any iterable; order is normalised by sorting).
    nparts:
        Number of partitions; must be >= 1.
    edges:
        Optional ``(name_a, name_b, latency)`` link triples, required for
        ``method="graph"``.
    method:
        ``"block"``, ``"round_robin"`` or ``"graph"``.

    Returns
    -------
    dict
        Mapping of component name to partition index.  Every partition in
        ``[0, nparts)`` that can be non-empty is used when possible.
    """
    ordered = sorted(set(names))
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if not ordered:
        return {}
    nparts = min(nparts, len(ordered))

    if method == "round_robin":
        return {name: i % nparts for i, name in enumerate(ordered)}

    if method == "block":
        out: dict[str, int] = {}
        n = len(ordered)
        base, rem = divmod(n, nparts)
        idx = 0
        for p in range(nparts):
            size = base + (1 if p < rem else 0)
            for name in ordered[idx : idx + size]:
                out[name] = p
            idx += size
        return out

    if method == "graph":
        if edges is None:
            raise ValueError('method="graph" requires edges')
        g = nx.Graph()
        g.add_nodes_from(ordered)
        for a, b, latency in edges:
            # Heavier weight on low-latency links keeps them internal.
            w = 1.0 / max(latency, 1e-12)
            if g.has_edge(a, b):
                g[a][b]["weight"] += w
            else:
                g.add_edge(a, b, weight=w)
        groups = _recursive_bisect(g, sorted(g.nodes()), nparts)
        out = {}
        for p, group in enumerate(groups):
            for name in group:
                out[name] = p
        return out

    raise ValueError(f"unknown partition method {method!r}")


def _recursive_bisect(g: nx.Graph, nodes: list[str], nparts: int) -> list[list[str]]:
    """Split *nodes* into *nparts* groups by repeated KL bisection."""
    if nparts <= 1 or len(nodes) <= 1:
        return [nodes]
    left_parts = nparts // 2
    right_parts = nparts - left_parts
    sub = g.subgraph(nodes)
    # Seed the bisection from a deterministic block split so results are
    # reproducible across runs.
    half = (len(nodes) * left_parts) // nparts
    seed_partition = (set(nodes[:half]), set(nodes[half:]))
    try:
        a, b = nx.algorithms.community.kernighan_lin_bisection(
            sub, partition=seed_partition, weight="weight", seed=0
        )
    except nx.NetworkXError:
        a, b = seed_partition
    left = sorted(a)
    right = sorted(b)
    if not left or not right:  # degenerate bisection; fall back to blocks
        left, right = nodes[:half], nodes[half:]
    return _recursive_bisect(g, left, left_parts) + _recursive_bisect(
        g, right, right_parts
    )


def migrate_assignment(
    assignment: Mapping[str, int],
    victim: int,
    dead: Optional[Iterable[int]] = None,
) -> dict[str, int]:
    """Rebalance a failed partition's components onto the survivors.

    Every component assigned to *victim* is re-homed round-robin across
    the surviving partitions (all partitions present in *assignment*
    minus *dead*), starting with the least-loaded survivor.  Components
    are processed in sorted-name order so the migration is deterministic.

    Parameters
    ----------
    assignment:
        Current ``{component name: partition}`` mapping.
    victim:
        The partition that failed.
    dead:
        All partitions considered failed (must include *victim*);
        defaults to ``{victim}``.

    Returns
    -------
    dict
        A new mapping with no component assigned to a dead partition.

    Raises
    ------
    ValueError
        If no surviving partition remains to absorb the components.
    """
    dead_set = set(dead) if dead is not None else {victim}
    dead_set.add(victim)
    survivors = sorted(set(assignment.values()) - dead_set)
    displaced = sorted(n for n, p in assignment.items() if p == victim)
    if displaced and not survivors:
        raise ValueError(
            f"partition {victim} failed and no survivors remain to absorb "
            f"its {len(displaced)} component(s)"
        )
    out = {n: p for n, p in assignment.items() if p != victim}
    if not displaced:
        return out
    load = {p: 0 for p in survivors}
    for p in out.values():
        if p in load:
            load[p] += 1
    # Least-loaded-first round robin; ties break on partition index.
    order = sorted(survivors, key=lambda p: (load[p], p))
    for i, name in enumerate(displaced):
        out[name] = order[i % len(order)]
    return out


def cut_statistics(
    assignment: Mapping[str, int],
    edges: Sequence[tuple[str, str, float]],
) -> dict:
    """Summarise a partitioning: cut links, min cross latency (lookahead)."""
    cut = 0
    min_cross = float("inf")
    for a, b, latency in edges:
        if assignment.get(a) != assignment.get(b):
            cut += 1
            min_cross = min(min_cross, latency)
    nparts = (max(assignment.values()) + 1) if assignment else 0
    sizes = [0] * nparts
    for p in assignment.values():
        sizes[p] += 1
    return {
        "cut_links": cut,
        "total_links": len(edges),
        "lookahead": min_cross,
        "partition_sizes": sizes,
    }
