"""Deterministic per-component random-number streams.

Every component gets its own :class:`numpy.random.Generator` derived from
the engine's root seed and the component's name.  This decouples the random
sequence observed by one component from how many draws other components
make, which is a prerequisite for the parallel engine to reproduce the
sequential engine's results exactly.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_hash(name: str) -> int:
    """A platform-independent 64-bit hash of *name* (``hash()`` is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RNGRegistry:
    """Factory of independent, name-keyed random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two registries with the same seed hand out identical
        streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for *name*."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_hash(name),)
            )
            gen = np.random.default_rng(ss)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name*, resetting its stream."""
        self._cache.pop(name, None)
        return self.get(name)

    def state_digest(self) -> str:
        """SHA-256 over every stream's bit-generator state.

        Two registries with equal digests will hand out identical draws
        for every already-materialised stream — the check snapshot tests
        use to prove RNG state survives a capture/restore round trip.
        """
        acc = hashlib.sha256()
        for name in sorted(self._cache):
            state = self._cache[name].bit_generator.state
            acc.update(name.encode("utf-8"))
            acc.update(repr(sorted(_flatten_state(state))).encode("utf-8"))
        return acc.hexdigest()


def _flatten_state(state, prefix: str = "") -> list[tuple[str, str]]:
    """Flatten a bit-generator state dict (ndarrays included) to pairs."""
    out: list[tuple[str, str]] = []
    if isinstance(state, dict):
        for key, value in state.items():
            out.extend(_flatten_state(value, f"{prefix}.{key}"))
    elif isinstance(state, np.ndarray):
        out.append((prefix, state.tobytes().hex()))
    else:
        out.append((prefix, repr(state)))
    return out
