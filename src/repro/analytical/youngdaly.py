"""Young/Daly optimal checkpoint intervals and expected-runtime model.

For checkpoint cost C and system MTBF M:

* Young's first-order optimum:  ``tau* = sqrt(2 C M)``
* Daly's higher-order optimum:  ``tau* = sqrt(2 C M) * [1 + ...] - C``
  (we use Daly's complete perturbation solution)

The expected-runtime model prices a work period ``tau + C`` under an
exponential failure process with rate ``1/M``, restart cost ``R`` and
half-period average rework, and is the oracle the fault-injection
ablation (ABL2) checks the simulator against.
"""

from __future__ import annotations

import math


def _check(C: float, M: float) -> None:
    if C <= 0:
        raise ValueError(f"checkpoint cost must be > 0, got {C}")
    if M <= 0:
        raise ValueError(f"MTBF must be > 0, got {M}")


def young_interval(ckpt_cost: float, mtbf: float) -> float:
    """Young's optimal compute time between checkpoints."""
    _check(ckpt_cost, mtbf)
    return math.sqrt(2.0 * ckpt_cost * mtbf)


def daly_interval(ckpt_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimum (reduces to Young for C << M)."""
    _check(ckpt_cost, mtbf)
    if ckpt_cost >= 2.0 * mtbf:
        # Degenerate regime: checkpointing more expensive than failures.
        return mtbf
    root = math.sqrt(2.0 * ckpt_cost * mtbf)
    return root * (
        1.0
        + (1.0 / 3.0) * math.sqrt(ckpt_cost / (2.0 * mtbf))
        + (1.0 / 9.0) * (ckpt_cost / (2.0 * mtbf))
    ) - ckpt_cost


def expected_runtime(
    work: float,
    interval: float,
    ckpt_cost: float,
    mtbf: float,
    restart_cost: float = 0.0,
) -> float:
    """Expected wall time to complete *work* seconds of computation.

    Uses the standard exponential-failure renewal argument: each segment
    of ``tau`` work plus its checkpoint costs on average

        E[segment] = (M + R) * (exp((tau + C)/M) - 1)

    (Daly 2006, eq. 13-ish), and the job needs ``work / tau`` segments.
    """
    if work <= 0:
        raise ValueError(f"work must be > 0, got {work}")
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    _check(ckpt_cost, mtbf)
    if restart_cost < 0:
        raise ValueError(f"restart cost must be >= 0, got {restart_cost}")
    segments = work / interval
    seg_time = (mtbf + restart_cost) * (math.expm1((interval + ckpt_cost) / mtbf))
    return segments * seg_time


def expected_waste(
    work: float,
    interval: float,
    ckpt_cost: float,
    mtbf: float,
    restart_cost: float = 0.0,
) -> float:
    """Expected wall time *lost* to checkpoints, rework and restarts.

    The difference between :func:`expected_runtime` and the failure-free,
    checkpoint-free ideal — the analytical prediction the resilience
    campaign cross-checks its simulated waste breakdown against.
    """
    return expected_runtime(work, interval, ckpt_cost, mtbf, restart_cost) - work


def expected_waste_fraction(
    work: float,
    interval: float,
    ckpt_cost: float,
    mtbf: float,
    restart_cost: float = 0.0,
) -> float:
    """Expected waste as a fraction of expected wall time."""
    total = expected_runtime(work, interval, ckpt_cost, mtbf, restart_cost)
    return (total - work) / total


def optimal_expected_runtime(
    work: float,
    ckpt_cost: float,
    mtbf: float,
    restart_cost: float = 0.0,
    method: str = "daly",
) -> tuple[float, float]:
    """(optimal interval, expected runtime at that interval)."""
    if method == "young":
        tau = young_interval(ckpt_cost, mtbf)
    elif method == "daly":
        tau = daly_interval(ckpt_cost, mtbf)
    else:
        raise ValueError(f"unknown method {method!r}")
    tau = max(tau, 1e-9)
    return tau, expected_runtime(work, tau, ckpt_cost, mtbf, restart_cost)


# -- two error types: fail-stop + silent data corruption -------------------------


def two_error_interval(
    ckpt_cost: float,
    verify_cost: float,
    mtbf_failstop: float,
    mtbf_sdc: float,
) -> float:
    """Optimal work interval between verified checkpoints under *two*
    error processes (Benoit et al.'s two-error-type first-order optimum).

    Each period does ``tau`` work, one verification (cost V) and one
    checkpoint (cost C).  Fail-stop errors (MTBF ``Mf``) lose half a
    period on average; silent errors (MTBF ``Ms``) are only caught at
    the *next* verification, losing a full period.  Minimising

        waste(tau) = (C + V)/tau + tau * (1/(2 Mf) + 1/Ms)

    gives::

        tau* = sqrt( (C + V) / (1/(2 Mf) + 1/Ms) )

    ``math.inf`` for either MTBF drops that error type; with
    ``Ms = inf`` and ``V = 0`` this reduces exactly to Young's
    ``sqrt(2 C Mf)``.
    """
    _check(ckpt_cost, mtbf_failstop)
    if verify_cost < 0:
        raise ValueError(f"verify cost must be >= 0, got {verify_cost}")
    if mtbf_sdc <= 0:
        raise ValueError(f"SDC MTBF must be > 0, got {mtbf_sdc}")
    rate = 0.0
    if not math.isinf(mtbf_failstop):
        rate += 1.0 / (2.0 * mtbf_failstop)
    if not math.isinf(mtbf_sdc):
        rate += 1.0 / mtbf_sdc
    if rate <= 0.0:
        return math.inf  # no failures: never checkpoint
    return math.sqrt((ckpt_cost + verify_cost) / rate)


def two_error_waste_fraction(
    interval: float,
    ckpt_cost: float,
    verify_cost: float,
    mtbf_failstop: float,
    mtbf_sdc: float,
) -> float:
    """First-order expected waste fraction of the two-error-type model at
    a given work *interval* (the objective :func:`two_error_interval`
    minimises)."""
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    _check(ckpt_cost, mtbf_failstop)
    if verify_cost < 0:
        raise ValueError(f"verify cost must be >= 0, got {verify_cost}")
    if mtbf_sdc <= 0:
        raise ValueError(f"SDC MTBF must be > 0, got {mtbf_sdc}")
    waste = (ckpt_cost + verify_cost) / interval
    if not math.isinf(mtbf_failstop):
        waste += interval / (2.0 * mtbf_failstop)
    if not math.isinf(mtbf_sdc):
        waste += interval / mtbf_sdc
    return waste
