"""Reliability-aware speedup laws (Cavelan et al. [15]; Zheng et al. [9,10]).

The classic laws are monotone in the process count n; the key insight of
the related work is that faults break that monotonicity: the system
failure rate grows with n, so past some n* adding processes *hurts*.

All functions take per-node MTBF ``node_mtbf`` and per-checkpoint cost
``ckpt_cost``; the FT-aware variants charge the Young-optimal
checkpoint-restart overhead at the n-node system MTBF.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analytical.youngdaly import young_interval


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"process count must be >= 1, got {n}")


def _check_frac(serial_fraction: float) -> None:
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0,1], got {serial_fraction}")


def amdahl_speedup(n: int, serial_fraction: float) -> float:
    """Classic Amdahl: fixed problem, n-way parallel remainder."""
    _check_n(n)
    _check_frac(serial_fraction)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n)


def gustafson_speedup(n: int, serial_fraction: float) -> float:
    """Classic Gustafson: scaled problem."""
    _check_n(n)
    _check_frac(serial_fraction)
    return serial_fraction + (1.0 - serial_fraction) * n


def _ft_inflation(
    n: int,
    node_mtbf: float,
    ckpt_cost: Optional[float],
    restart_cost: float,
    job_time: float,
) -> float:
    """Multiplier >= 1 on execution time due to faults (and C/R if used).

    With checkpoint-restart at Young's interval we use Daly's exact
    expected-segment time under exponential failures:

        E[segment] = (M + R) * (exp((tau + C)/M) - 1),  inflation = E/tau.

    Without checkpointing a failure loses *all* progress, so the segment
    is the entire fault-free job: inflation = (M+R)(exp(T/M)-1)/T.  Both
    forms grow without bound as the system failure rate rises, which is
    what produces the related work's finite optimal process count.
    """
    if node_mtbf <= 0:
        raise ValueError(f"node_mtbf must be > 0, got {node_mtbf}")
    if restart_cost < 0:
        raise ValueError(f"restart_cost must be >= 0, got {restart_cost}")
    if job_time <= 0:
        raise ValueError(f"job_time must be > 0, got {job_time}")
    M = node_mtbf / n
    if ckpt_cost is None:
        x = min(job_time / M, 500.0)  # avoid overflow; already astronomic
        return (M + restart_cost) * math.expm1(x) / job_time
    if ckpt_cost <= 0:
        raise ValueError(f"ckpt_cost must be > 0, got {ckpt_cost}")
    tau = young_interval(ckpt_cost, M)
    x = min((tau + ckpt_cost) / M, 500.0)
    return (M + restart_cost) * math.expm1(x) / tau


def reliability_aware_amdahl(
    n: int,
    serial_fraction: float,
    node_mtbf: float,
    ckpt_cost: Optional[float] = None,
    restart_cost: float = 0.0,
    work: float = 86400.0,
) -> float:
    """Amdahl speedup under faults (Cavelan et al.).

    ``ckpt_cost=None`` models a faulty system without fault-tolerance;
    passing a cost enables Young-optimal checkpoint-restart.  ``work`` is
    the single-process job duration (the no-FT fault exposure window
    scales with the per-n job time).
    """
    base = amdahl_speedup(n, serial_fraction)
    return base / _ft_inflation(n, node_mtbf, ckpt_cost, restart_cost, work / base)


def reliability_aware_gustafson(
    n: int,
    serial_fraction: float,
    node_mtbf: float,
    ckpt_cost: Optional[float] = None,
    restart_cost: float = 0.0,
    work: float = 86400.0,
) -> float:
    """Gustafson (weak-scaling) speedup under faults (Zheng et al.).

    Weak scaling keeps per-node work fixed, so the fault exposure window
    is ``work`` itself.
    """
    base = gustafson_speedup(n, serial_fraction)
    return base / _ft_inflation(n, node_mtbf, ckpt_cost, restart_cost, work)


def optimal_process_count(
    serial_fraction: float,
    node_mtbf: float,
    ckpt_cost: Optional[float] = None,
    restart_cost: float = 0.0,
    law: str = "amdahl",
    n_max: int = 1_000_000,
) -> int:
    """argmax_n of the reliability-aware speedup (log-grid search).

    The existence of a finite optimum is the headline finding of the
    related work: more nodes eventually hurt.
    """
    if law == "amdahl":
        fn = reliability_aware_amdahl
    elif law == "gustafson":
        fn = reliability_aware_gustafson
    else:
        raise ValueError(f"unknown law {law!r}")
    best_n, best_s = 1, fn(1, serial_fraction, node_mtbf, ckpt_cost, restart_cost)
    n = 1
    while n < n_max:
        n = max(n + 1, int(n * 1.25))
        s = fn(n, serial_fraction, node_mtbf, ckpt_cost, restart_cost)
        if s > best_s:
            best_n, best_s = n, s
    return best_n
