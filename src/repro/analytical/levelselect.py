"""Checkpoint-level selection: which FTI level optimises expected runtime?

The paper's discussion of Table I ends with exactly this question:
*"System performance parameters and fault rates can determine what level
of fault-tolerance is necessary to optimize performance."*  This module
answers it analytically, complementing the simulator:

Each FTI level ``k`` has a cost per instance ``C_k`` and a *coverage*
``q_k`` — the probability that a random failure is recoverable from that
level's checkpoint (L1 recovers software crashes only; L2/L3 survive
growing classes of node loss; L4 survives everything).  An uncovered
failure forces the much more expensive fallback (e.g. job resubmission
and restart from the last L4 checkpoint or from scratch).

Expected runtime per unit of work at level k, checkpointing every tau:

    waste_k = C_k / tau                               (periodic overhead)
            + (tau/2 + R_k) / M                       (covered failures)
            + (1 - q_k) * F / M                       (uncovered failures)

with M the system MTBF, R_k the level's recovery time and F the fallback
penalty.  The optimal level minimises waste at its own Young-optimal tau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analytical.youngdaly import young_interval


@dataclass(frozen=True)
class LevelProfile:
    """One checkpoint level's cost/coverage characterisation.

    Parameters
    ----------
    level:
        FTI level number (1-4).
    ckpt_cost:
        Seconds per checkpoint instance.
    coverage:
        Fraction of failures recoverable from this level in [0, 1].
    recovery_time:
        Seconds to restore from this level after a covered failure.
    """

    level: int
    ckpt_cost: float
    coverage: float
    recovery_time: float = 30.0

    def __post_init__(self) -> None:
        if self.ckpt_cost <= 0:
            raise ValueError(f"ckpt_cost must be > 0, got {self.ckpt_cost}")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(f"coverage must be in [0,1], got {self.coverage}")
        if self.recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {self.recovery_time}")


@dataclass
class LevelChoice:
    """Evaluation of one level at its optimal interval."""

    profile: LevelProfile
    interval: float
    waste: float

    @property
    def efficiency(self) -> float:
        """Useful-work fraction, ``1 / (1 + waste)``."""
        return 1.0 / (1.0 + self.waste)


def evaluate_level(
    profile: LevelProfile,
    system_mtbf: float,
    fallback_penalty: float,
    interval: Optional[float] = None,
) -> LevelChoice:
    """Waste rate of *profile* at the given (or Young-optimal) interval."""
    if system_mtbf <= 0:
        raise ValueError(f"system_mtbf must be > 0, got {system_mtbf}")
    if fallback_penalty < 0:
        raise ValueError(f"fallback_penalty must be >= 0, got {fallback_penalty}")
    tau = interval if interval is not None else young_interval(
        profile.ckpt_cost, system_mtbf
    )
    if tau <= 0:
        raise ValueError(f"interval must be > 0, got {tau}")
    waste = (
        profile.ckpt_cost / tau
        + profile.coverage * (tau / 2.0 + profile.recovery_time) / system_mtbf
        + (1.0 - profile.coverage) * fallback_penalty / system_mtbf
    )
    return LevelChoice(profile=profile, interval=tau, waste=waste)


def select_level(
    profiles: Sequence[LevelProfile],
    system_mtbf: float,
    fallback_penalty: float,
) -> list[LevelChoice]:
    """Rank all levels by expected waste (best first).

    The qualitative result this reproduces: at low failure rates cheap,
    low-coverage levels win (uncovered failures are rare); as the system
    MTBF shrinks, the optimum migrates to higher levels despite their
    cost — the cost-benefit balance the paper's DSE explores.
    """
    if not profiles:
        raise ValueError("no level profiles given")
    choices = [
        evaluate_level(p, system_mtbf, fallback_penalty) for p in profiles
    ]
    return sorted(choices, key=lambda c: c.waste)


def quartz_level_profiles(
    archbeo_or_costs: Mapping[int, float],
    recovery_times: Optional[Mapping[int, float]] = None,
) -> list[LevelProfile]:
    """Build the four FTI level profiles from per-level instance costs.

    Coverage values follow Table I's protection domains (fractions of the
    failure mix each level survives; the mix assumes most failures are
    software/transient, most hardware failures kill a single node, and a
    small remainder takes groups or racks):

    =====  ========  ===========================================
    level  coverage  survives
    =====  ========  ===========================================
    L1     0.60      software crashes (node storage intact)
    L2     0.90      + single-node losses with a live partner
    L3     0.97      + up to half a group concurrently
    L4     1.00      everything (PFS persists)
    =====  ========  ===========================================
    """
    coverage = {1: 0.60, 2: 0.90, 3: 0.97, 4: 1.00}
    default_recovery = {1: 10.0, 2: 30.0, 3: 60.0, 4: 120.0}
    recovery = dict(default_recovery)
    if recovery_times:
        recovery.update(recovery_times)
    out = []
    for level, cost in sorted(archbeo_or_costs.items()):
        if level not in coverage:
            raise ValueError(f"unknown FTI level {level}")
        out.append(
            LevelProfile(
                level=level,
                ckpt_cost=float(cost),
                coverage=coverage[level],
                recovery_time=recovery[level],
            )
        )
    return out
