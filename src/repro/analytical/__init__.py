"""Analytical fault-tolerance performance models from the related work.

These are the abstract models the paper positions BE-SST against
(Section II); they serve as baselines and sanity oracles for the
simulator:

* :mod:`~repro.analytical.youngdaly` — Young's and Daly's optimal
  checkpoint intervals and the resulting expected runtime,
* :mod:`~repro.analytical.speedup` — reliability-aware Amdahl
  (Cavelan et al. [15]) and Gustafson (Zheng et al. [9], [10]) speedup
  models: fault-free, with faults, and with faults + checkpoint-restart,
* :mod:`~repro.analytical.replication` — the dual-replication extension
  (Hussain et al. [14]),
* :mod:`~repro.analytical.sparenodes` — the spare-node / repair queueing
  view (Jin et al. [16]),
* :mod:`~repro.analytical.netavail` — closed-form availability and
  degraded-fabric slowdown for the network fault domain.
"""

from repro.analytical.youngdaly import (
    young_interval,
    daly_interval,
    expected_runtime,
    optimal_expected_runtime,
    two_error_interval,
    two_error_waste_fraction,
)
from repro.analytical.speedup import (
    amdahl_speedup,
    gustafson_speedup,
    reliability_aware_amdahl,
    reliability_aware_gustafson,
    optimal_process_count,
)
from repro.analytical.replication import replication_speedup, replication_mtbf
from repro.analytical.sparenodes import SpareNodeModel
from repro.analytical.netavail import (
    steady_state_failed_links,
    aggregate_stretch,
    single_link_stretch,
    expected_stretch,
    torus_stretch_bound,
    fattree_degrade,
    isolation_probability,
    expected_availability,
    expected_slowdown,
    expected_collective_inflation,
    active_probability,
    degraded_collective_inflation,
    time_shared_slowdown,
)

__all__ = [
    "young_interval",
    "daly_interval",
    "expected_runtime",
    "optimal_expected_runtime",
    "two_error_interval",
    "two_error_waste_fraction",
    "amdahl_speedup",
    "gustafson_speedup",
    "reliability_aware_amdahl",
    "reliability_aware_gustafson",
    "optimal_process_count",
    "replication_speedup",
    "replication_mtbf",
    "SpareNodeModel",
    "steady_state_failed_links",
    "aggregate_stretch",
    "single_link_stretch",
    "expected_stretch",
    "torus_stretch_bound",
    "fattree_degrade",
    "isolation_probability",
    "expected_availability",
    "expected_slowdown",
    "expected_collective_inflation",
    "active_probability",
    "degraded_collective_inflation",
    "time_shared_slowdown",
]
