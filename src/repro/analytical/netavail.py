"""Closed-form network availability and degraded-fabric slowdown.

Cross-checks for the simulator's network fault domain
(:mod:`repro.network.health`), in the same spirit as the Young/Daly
waste cross-check: a renewal-style expectation the Monte-Carlo results
must agree with to within the documented tolerance band.

The model: link failures arrive Poisson at ``1 / link_mtbf_s`` per link
and each outage lasts ``repair_s`` (M/G/infinity — outages overlap
freely), so the steady-state expected number of concurrently failed
links is ``nlinks * repair_s / (link_mtbf_s + repair_s)``.  Each failed
link detours the traffic crossing it; with ``k`` failed links of ``L``
the fabric-wide hop stretch mirrors the simulator's aggregate penalty,
``1 + 2k/L``.  Endpoint isolation (every incident link dead — the pair
is *partitioned*, not just slowed) is bounded by a hypergeometric union
bound over the endpoints.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import networkx as nx

from repro.network.topology import Topology

#: default split of the network fault rate across kinds (mirrors
#: :data:`repro.core.fault_injection.NET_KIND_SPLIT`)
_DEFAULT_SPLIT = (("link", 0.6), ("switch", 0.1), ("netdeg", 0.3))


def steady_state_failed_links(
    nlinks: int, link_mtbf_s: float, repair_s: float
) -> float:
    """Expected concurrently failed links (M/G/infinity occupancy)."""
    if nlinks < 1:
        raise ValueError(f"nlinks must be >= 1, got {nlinks}")
    if link_mtbf_s <= 0:
        raise ValueError(f"link_mtbf_s must be > 0, got {link_mtbf_s}")
    if repair_s < 0:
        raise ValueError(f"repair_s must be >= 0, got {repair_s}")
    return nlinks * repair_s / (link_mtbf_s + repair_s)


def aggregate_stretch(nlinks: int, failed: float) -> float:
    """Fabric-wide hop stretch with *failed* of *nlinks* out of service —
    the closed form of :meth:`NetworkHealth.aggregate_penalty`'s
    ``1 + 2·failed/links`` (each detour costs ~2 extra hops)."""
    if nlinks < 1:
        raise ValueError(f"nlinks must be >= 1, got {nlinks}")
    return 1.0 + 2.0 * max(0.0, failed) / nlinks


def single_link_stretch(topology: Topology) -> float:
    """Exact mean route stretch of one failed link, by enumeration.

    For every link of the endpoint graph: remove it, recompute all-pairs
    weighted shortest paths, and average ``hops_after / hops_before``
    over the pairs that stay connected.  The mean over links is the
    exact one-failure counterpart of the ``1 + 2/L`` aggregate bound —
    small topologies only (O(L · n²) Dijkstra work).
    """
    g = topology.to_networkx()
    base = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
    pairs = [
        (a, b)
        for a in g.nodes
        for b in g.nodes
        if a < b and b in base.get(a, {})
    ]
    if not pairs or g.number_of_edges() == 0:
        return 1.0
    base_total = sum(base[a][b] for a, b in pairs)
    if base_total <= 0:
        return 1.0
    stretches = []
    for edge in sorted(tuple(sorted(e)) for e in g.edges):
        h = nx.restricted_view(g, nodes=[], edges=[edge])
        after = dict(nx.all_pairs_dijkstra_path_length(h, weight="weight"))
        total = 0.0
        connected = True
        for a, b in pairs:
            d = after.get(a, {}).get(b)
            if d is None:
                connected = False
                break
            total += d
        if not connected:
            continue  # this link was a cut edge: a partition, not a detour
        stretches.append(total / base_total)
    return sum(stretches) / len(stretches) if stretches else 1.0


def expected_stretch(topology: Topology, k: float) -> float:
    """Expected route stretch with *k* (possibly fractional, an
    expectation) failed links, linearised from the exact one-failure
    enumeration: ``1 + k·(single_link_stretch − 1)``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return 1.0 + k * (single_link_stretch(topology) - 1.0)


def torus_stretch_bound(topology: Topology, k: float) -> float:
    """Closed-form torus stretch bound ``1 + 2k/L``: each failed torus
    link detours its minimal routes around one ring step (2 extra
    hops)."""
    g = topology.to_networkx()
    return aggregate_stretch(g.number_of_edges(), k)


def fattree_degrade(topology: Topology, k: float) -> float:
    """Fat-tree bandwidth de-rate with *k* failed core uplinks: the
    surviving ``U − k`` uplinks carry the same cross-switch traffic, so
    effective bandwidth de-rates by ``1 / (1 − k/U)`` (unbounded as the
    last uplink dies; clamped at full outage)."""
    uplinks = getattr(topology, "uplinks_per_edge", None)
    num_edge = getattr(topology, "num_edge_switches", None)
    if uplinks is None or num_edge is None:
        raise ValueError(
            f"{type(topology).__name__} is not a fat tree (no uplink structure)"
        )
    total = uplinks * num_edge
    if k >= total:
        return math.inf
    return 1.0 / (1.0 - k / total)


def isolation_probability(topology: Topology, k: int) -> float:
    """Union bound on P(some endpoint loses *all* incident links) when
    *k* of the *L* links fail uniformly at random (hypergeometric):
    ``Σ_n C(L − deg(n), k − deg(n)) / C(L, k)``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    g = topology.to_networkx()
    nlinks = g.number_of_edges()
    if nlinks == 0 or k == 0:
        return 0.0
    k = min(k, nlinks)
    denom = math.comb(nlinks, k)
    p = 0.0
    for n in g.nodes:
        deg = g.degree[n]
        if deg <= k:
            p += math.comb(nlinks - deg, k - deg) / denom
    return min(1.0, p)


def expected_availability(topology: Topology, k: int) -> float:
    """Probability no endpoint is isolated with *k* random failed links
    (1 − the isolation union bound, clamped)."""
    return max(0.0, 1.0 - isolation_probability(topology, k))


def active_probability(event_rate_per_s: float, repair_s: float) -> float:
    """Stationary probability that at least one outage is active, for
    Poisson arrivals at *event_rate_per_s* each lasting *repair_s*
    (M/G/infinity occupancy is Poisson with mean ``rate · repair``):
    ``1 − exp(−rate·repair)``."""
    if event_rate_per_s < 0:
        raise ValueError(f"event_rate_per_s must be >= 0, got {event_rate_per_s}")
    if repair_s < 0:
        raise ValueError(f"repair_s must be >= 0, got {repair_s}")
    return 1.0 - math.exp(-event_rate_per_s * repair_s)


def degraded_collective_inflation(
    topology: Topology,
    nbytes: int,
    degrade_factor: float = 4.0,
    loss_prob: float = 0.05,
    latency_per_hop: float = 100e-9,
    overhead: float = 300e-9,
    bytes_per_second: float = 12.5e9,
    contention_factor: Optional[float] = None,
) -> float:
    """``far_time`` inflation *conditional on* an active link
    degradation: the bandwidth term de-rates by the full
    ``degrade_factor`` and every message pays the retransmission factor
    ``1/(1 − loss_prob)`` — the deterministic ratio one degraded window
    imposes, to be time-shared via :func:`time_shared_slowdown`."""
    if degrade_factor < 1.0:
        raise ValueError(f"degrade_factor must be >= 1, got {degrade_factor}")
    if not 0.0 <= loss_prob < 1.0:
        raise ValueError(f"loss_prob must be in [0, 1), got {loss_prob}")
    L = float(latency_per_hop)
    o = float(overhead)
    G = 1.0 / float(bytes_per_second)
    if contention_factor is None:
        contention_factor = getattr(topology, "oversubscription", 1.0)
    d = topology.diameter()
    healthy = L * d + 2 * o + G * nbytes * contention_factor
    faulty = (L * d + 2 * o + G * nbytes * contention_factor * degrade_factor) / (
        1.0 - loss_prob
    )
    return faulty / healthy if healthy > 0 else 1.0


def time_shared_slowdown(active_fraction: float, inflation: float) -> float:
    """Whole-run slowdown when a fraction *active_fraction* of **wall
    time** runs inflated by *inflation*.

    Work completes at rate ``1`` while healthy and ``1/inflation`` while
    degraded, so the mean rate is the time-weighted harmonic mean and
    the slowdown is its inverse: ``1 / ((1−f) + f/inflation)``.  This is
    *not* ``1 + f·(inflation−1)`` — degraded windows cover fewer
    timesteps precisely because each one is slower (length-biased
    sampling), which the arithmetic form overstates.
    """
    if not 0.0 <= active_fraction <= 1.0:
        raise ValueError(
            f"active_fraction must be in [0,1], got {active_fraction}"
        )
    if inflation < 1.0:
        raise ValueError(f"inflation must be >= 1, got {inflation}")
    return 1.0 / ((1.0 - active_fraction) + active_fraction / inflation)


def expected_slowdown(comm_fraction: float, inflation: float) -> float:
    """Application slowdown when the communication share of the runtime
    (``comm_fraction``) inflates by ``inflation``:
    ``1 + comm_fraction·(inflation − 1)`` (Amdahl over the network
    term)."""
    if not 0.0 <= comm_fraction <= 1.0:
        raise ValueError(f"comm_fraction must be in [0,1], got {comm_fraction}")
    if inflation < 1.0:
        raise ValueError(f"inflation must be >= 1, got {inflation}")
    return 1.0 + comm_fraction * (inflation - 1.0)


def expected_collective_inflation(
    topology: Topology,
    nbytes: int,
    link_mtbf_s: float,
    repair_s: float,
    split: Optional[Sequence[tuple[str, float]]] = None,
    degrade_factor: float = 4.0,
    loss_prob: float = 0.05,
    latency_per_hop: float = 100e-9,
    overhead: float = 300e-9,
    bytes_per_second: float = 12.5e9,
    contention_factor: Optional[float] = None,
) -> float:
    """Expected steady-state inflation of one ``far_time`` collective
    message under the link failure process — the analytic mirror of
    :meth:`LogGPModel.far_time` over the health overlay.

    Per-kind outage occupancies follow M/G/infinity: with total fabric
    event rate ``L / link_mtbf_s`` split across kinds, kind *i* has
    ``N_i = rate_i · repair_s`` expected concurrent outages.  Failed
    links (link faults, plus switch deaths times the mean degree)
    stretch the latency term; an active degradation (probability
    ``1 − exp(−N_netdeg)``, Poisson) de-rates the bandwidth term by
    ``degrade_factor`` and multiplies by the retransmission factor
    ``1 / (1 − loss_prob)``.
    """
    if link_mtbf_s <= 0:
        raise ValueError(f"link_mtbf_s must be > 0, got {link_mtbf_s}")
    if repair_s < 0:
        raise ValueError(f"repair_s must be >= 0, got {repair_s}")
    if split is None:
        split = _DEFAULT_SPLIT
    shares = {k: 0.0 for k in ("link", "switch", "netdeg")}
    for kind, w in split:
        if kind not in shares:
            raise ValueError(f"unknown network kind {kind!r} in split")
        shares[kind] += float(w)
    g = topology.to_networkx()
    nlinks = g.number_of_edges()
    nnodes = g.number_of_nodes()
    if nlinks == 0:
        return 1.0
    rate = nlinks / link_mtbf_s
    n_link = rate * shares["link"] * repair_s
    n_switch = rate * shares["switch"] * repair_s
    n_netdeg = rate * shares["netdeg"] * repair_s
    mean_degree = 2.0 * nlinks / nnodes
    out = n_link + n_switch * mean_degree
    stretch = aggregate_stretch(nlinks, out)
    p_deg = 1.0 - math.exp(-n_netdeg)
    derate = 1.0 + p_deg * (degrade_factor - 1.0)
    loss = p_deg * loss_prob
    L = float(latency_per_hop)
    o = float(overhead)
    G = 1.0 / float(bytes_per_second)
    if contention_factor is None:
        contention_factor = getattr(topology, "oversubscription", 1.0)
    d = topology.diameter()
    healthy = L * d + 2 * o + G * nbytes * contention_factor
    faulty = (L * d * stretch + 2 * o + G * nbytes * contention_factor * derate) / (
        1.0 - loss
    )
    return faulty / healthy if healthy > 0 else 1.0
