"""Dual replication as fault tolerance (Hussain et al. [14]).

Running every rank twice halves usable parallelism but squares down the
effective failure probability: a replica pair only fails when *both* its
members fail before a checkpoint.  The headline result is that beyond a
scale threshold, replication + C/R beats C/R alone because the effective
MTBF grows instead of shrinking with node count.
"""

from __future__ import annotations

import math

from repro.analytical.speedup import amdahl_speedup, gustafson_speedup
from repro.analytical.youngdaly import young_interval


def replication_mtbf(n: int, node_mtbf: float, interval: float) -> float:
    """Effective MTBF of n nodes arranged as n/2 dual-replica pairs.

    Within a checkpoint interval of length tau, a pair is lost only if
    both members fail (probability ``p^2`` with ``p = tau/node_mtbf`` to
    first order).  The expected time between pair losses is then

        M_pair ≈ tau / (n/2 * p^2)
    """
    if n < 2:
        raise ValueError(f"replication needs >= 2 nodes, got {n}")
    if node_mtbf <= 0 or interval <= 0:
        raise ValueError("node_mtbf and interval must be > 0")
    p = min(interval / node_mtbf, 1.0)
    pairs = n // 2
    rate = pairs * p * p / interval
    return 1.0 / rate if rate > 0 else math.inf


def replication_speedup(
    n: int,
    serial_fraction: float,
    node_mtbf: float,
    ckpt_cost: float,
    restart_cost: float = 0.0,
    law: str = "amdahl",
) -> float:
    """Speedup of dual replication + checkpoint-restart on n nodes.

    Only n/2 nodes contribute to parallelism; the C/R waste is charged at
    the replication-boosted MTBF.
    """
    if n < 2:
        raise ValueError(f"replication needs >= 2 nodes, got {n}")
    if ckpt_cost <= 0:
        raise ValueError(f"ckpt_cost must be > 0, got {ckpt_cost}")
    base_fn = amdahl_speedup if law == "amdahl" else gustafson_speedup
    if law not in ("amdahl", "gustafson"):
        raise ValueError(f"unknown law {law!r}")
    usable = n // 2
    base = base_fn(usable, serial_fraction)
    # fixed-point: interval depends on MTBF which depends on interval;
    # a few iterations converge fast
    M = node_mtbf  # initial guess
    tau = young_interval(ckpt_cost, M)
    for _ in range(20):
        M_new = replication_mtbf(n, node_mtbf, tau)
        tau_new = young_interval(ckpt_cost, M_new)
        if abs(tau_new - tau) < 1e-9 * max(tau, 1.0):
            tau, M = tau_new, M_new
            break
        tau, M = tau_new, M_new
    x = min((tau + ckpt_cost) / M, 500.0)
    inflation = (M + restart_cost) * math.expm1(x) / tau
    return base / inflation
