"""Spare-node provisioning model (Jin et al. [16]).

A job runs on ``n`` active nodes with ``s`` spares.  Failed nodes are
swapped for spares instantly (small swap cost) while a repair process
returns failed nodes to the pool; the job only stalls when a failure
arrives with no spare available.  This simple birth-death treatment
reproduces Jin's qualitative findings: a few spares remove almost all
failure stalls, with diminishing returns.
"""

from __future__ import annotations

import math


class SpareNodeModel:
    """Steady-state spare-pool analysis.

    Parameters
    ----------
    n_active:
        Compute nodes the job uses.
    n_spare:
        Spare nodes provisioned.
    node_mtbf:
        Per-node mean time between failures (s).
    repair_time:
        Mean time to repair a failed node and return it as a spare (s).
    swap_cost:
        Job-visible cost of swapping in a spare (s).
    rebuild_cost:
        Job-visible cost when no spare is available (full stall until a
        repair completes, plus restart).
    """

    def __init__(
        self,
        n_active: int,
        n_spare: int,
        node_mtbf: float,
        repair_time: float,
        swap_cost: float = 30.0,
        rebuild_cost: float = 0.0,
    ) -> None:
        if n_active < 1:
            raise ValueError(f"n_active must be >= 1, got {n_active}")
        if n_spare < 0:
            raise ValueError(f"n_spare must be >= 0, got {n_spare}")
        if node_mtbf <= 0 or repair_time <= 0:
            raise ValueError("node_mtbf and repair_time must be > 0")
        if swap_cost < 0 or rebuild_cost < 0:
            raise ValueError("costs must be >= 0")
        self.n_active = n_active
        self.n_spare = n_spare
        self.node_mtbf = node_mtbf
        self.repair_time = repair_time
        self.swap_cost = swap_cost
        self.rebuild_cost = rebuild_cost if rebuild_cost > 0 else repair_time

    @property
    def failure_rate(self) -> float:
        """System failure rate (1/s)."""
        return self.n_active / self.node_mtbf

    def spare_exhaustion_probability(self) -> float:
        """P(no spare available when a failure arrives).

        M/M/inf-style approximation: the number of nodes in repair is
        Poisson with mean ``lambda * repair_time``; the pool is exhausted
        when that count exceeds ``n_spare``.
        """
        mean_in_repair = self.failure_rate * self.repair_time
        # P(Poisson(mu) > s) = 1 - CDF(s)
        mu = mean_in_repair
        cdf = 0.0
        term = math.exp(-mu)
        for k in range(self.n_spare + 1):
            cdf += term
            term *= mu / (k + 1)
        return max(0.0, min(1.0, 1.0 - cdf))

    def expected_stall_per_failure(self) -> float:
        """Expected job-visible cost of one failure."""
        p_exhaust = self.spare_exhaustion_probability()
        return (1 - p_exhaust) * self.swap_cost + p_exhaust * self.rebuild_cost

    def expected_overhead(self, runtime: float) -> float:
        """Expected total failure-handling time over a *runtime*-second job."""
        if runtime <= 0:
            raise ValueError(f"runtime must be > 0, got {runtime}")
        failures = runtime * self.failure_rate
        return failures * self.expected_stall_per_failure()

    def effective_runtime(self, runtime: float) -> float:
        """Job runtime inflated by expected failure handling."""
        return runtime + self.expected_overhead(runtime)
