"""Adapters hooking the metrics registry and tracer into the simulator.

Three layers, one trace:

- :class:`EngineObs` attaches to an :class:`~repro.des.engine.Engine`
  (``engine.attach_obs(obs)``).  The engine's hot loop touches only two
  pre-hoisted fields per event — a busy-time dict update bracketing the
  handler call and a stride-64 queue-depth sample — and the adapter
  turns the accumulated state into metrics (plus an ``engine.run`` span
  and a fed :class:`~repro.des.stats.UtilizationTracker`) at run end.
- :class:`SupervisorObs` receives the
  :class:`~repro.core.supervisor.TaskSupervisor` lifecycle hooks
  (started / completed / failed / retried / quarantined / rebuild /
  degrade) and keeps one *detached* span per task — many tasks run
  concurrently, so task spans cannot live on a tracer stack.  Task span
  ids are **derived** (:func:`~repro.obs.tracing.derive_span_id`) from
  the trace id and task key, which is exactly the id a worker process
  computes for its parent — the cross-process edge of the timeline.
- :class:`CampaignObs` owns the root span, the exporters (JSONL sink,
  Prometheus snapshot, merged Chrome trace), the heartbeat, and the
  span/metrics exchange directory worker processes dump into.

Overhead budget: with observability attached, the engine pays ~2
``perf_counter`` calls + one dict update per event (measured ≤ 1.1x on
the Fig.-7 workload by ``benchmarks/bench_obs_overhead.py``); with it
detached, one ``is None`` test.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.export import JsonlSink, guarded_export, write_prometheus
from repro.obs.heartbeat import CampaignHeartbeat
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import (
    ObsContext,
    Span,
    Tracer,
    derive_span_id,
    load_spans,
    spans_jsonl_path,
)

#: queue-depth histogram bounds (events pending)
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

#: snapshot/FTI latency quantiles
LATENCY_QUANTILES = (0.5, 0.9, 0.99)


class EngineObs:
    """Per-engine instrumentation state and flush logic.

    Attach with ``engine.attach_obs(EngineObs(...))`` before ``run()``.
    The same adapter works for :class:`~repro.des.engine.Engine` and
    :class:`~repro.des.parallel.ParallelEngine` (window / lookahead /
    failover metrics are emitted when the engine has them).

    The ``busy`` dict and ``queue_depth`` instrument are *public hot
    fields*: the engine run loop updates them directly so the per-event
    cost stays at two clock reads and a dict update.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        utilization=None,
    ) -> None:
        from repro.des.stats import UtilizationTracker

        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer
        self.utilization = (
            utilization if utilization is not None else UtilizationTracker()
        )
        #: wall seconds spent in handlers, keyed by destination component
        #: (drained into counters + the utilization tracker at run end)
        self.busy: dict[str, float] = {}
        #: sampled pending-event counts (stride 64 in the run loop)
        self.queue_depth = self.registry.histogram(
            "engine_queue_depth",
            help="Pending events in the engine queue (sampled every 64 events).",
            buckets=QUEUE_DEPTH_BUCKETS,
        )
        self.runs = 0
        self._span: Optional[Span] = None
        self._t0 = 0.0
        self._events0 = 0
        self._windows0 = 0
        self._failover0 = (0, 0, 0)

    # -- run lifecycle (called by Engine.run) --------------------------------

    def run_started(self, engine) -> None:
        self._t0 = time.perf_counter()
        self._events0 = engine.events_fired
        self._windows0 = getattr(engine, "windows_executed", 0)
        failover = getattr(engine, "_failover", None)
        self._failover0 = (
            (failover.failures_injected, failover.restores, failover.migrations)
            if failover is not None
            else (0, 0, 0)
        )
        if self.tracer is not None:
            self._span = self.tracer.start_span("engine.run", push=False)

    def run_finished(self, engine) -> None:
        wall = time.perf_counter() - self._t0
        fired = engine.events_fired - self._events0
        reg = self.registry
        self.runs += 1
        reg.counter(
            "engine_events_total", help="Events whose handlers ran."
        ).inc(fired)
        reg.counter(
            "engine_run_seconds_total", help="Wall seconds inside Engine.run."
        ).inc(wall)
        reg.gauge(
            "engine_sim_time_seconds", help="Simulation clock at last run end."
        ).set(engine.now if engine.now != float("inf") else 0.0)
        reg.gauge(
            "engine_events_per_second", help="Throughput of the last run."
        ).set(fired / wall if wall > 0 else 0.0)
        # Drain per-component busy time into counters + the utilization
        # tracker (the engine feeds it; components never do).
        for component, seconds in self.busy.items():
            name = component or "_engine"
            reg.counter(
                "engine_component_busy_seconds_total",
                help="Wall seconds spent in event handlers, per component.",
                component=name,
            ).inc(seconds)
            self.utilization.add_busy(name, seconds)
        self.busy.clear()
        windows = getattr(engine, "windows_executed", None)
        if windows is not None and hasattr(engine, "lookahead"):
            reg.counter(
                "engine_windows_total", help="Conservative windows executed."
            ).inc(windows - self._windows0)
            la = engine.lookahead
            reg.gauge(
                "engine_lookahead_seconds",
                help="Conservative lookahead (min cross-partition latency).",
            ).set(0.0 if la == float("inf") else la)
        failover = getattr(engine, "_failover", None)
        if failover is not None:
            f0, r0, m0 = self._failover0
            for metric, now_v, base in (
                ("engine_failover_failures_total", failover.failures_injected, f0),
                ("engine_failover_restores_total", failover.restores, r0),
                ("engine_failover_migrations_total", failover.migrations, m0),
            ):
                reg.counter(metric, help="Partition failover activity.").inc(
                    now_v - base
                )
        if self._span is not None:
            self._span.end(events=fired, sim_time=float(engine.now))
            self._span = None


class SupervisorObs:
    """Lifecycle hooks :class:`TaskSupervisor` calls when given an ``obs``.

    One detached span per task key, covering all its attempts; the span
    id is ``derive_span_id(trace_id, "task", key)`` so the worker
    process executing the task computes the same id for its parent.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        parent_span_id: Optional[str] = None,
        owner: Optional["CampaignObs"] = None,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer
        self.parent_span_id = parent_span_id
        self.owner = owner
        self._task_spans: dict[str, Span] = {}
        self._next_tid = 1

    def task_span_id(self, key: str) -> Optional[str]:
        if self.tracer is None:
            return None
        return derive_span_id(self.tracer.trace_id, "task", key)

    # -- hooks ----------------------------------------------------------------

    def task_started(self, key: str, attempt: int) -> None:
        self.registry.counter(
            "supervisor_tasks_started_total", help="Task attempts launched."
        ).inc()
        if self.tracer is not None and key not in self._task_spans:
            self._task_spans[key] = self.tracer.start_span(
                f"task:{key}",
                parent_id=self.parent_span_id,
                span_id=self.task_span_id(key),
                push=False,
                tid=self._next_tid,
                key=key,
            )
            self._next_tid += 1
        span = self._task_spans.get(key)
        if span is not None:
            span.attrs["attempts"] = attempt

    def task_completed(self, key: str) -> None:
        self.registry.counter(
            "supervisor_tasks_completed_total", help="Tasks completed."
        ).inc()
        span = self._task_spans.pop(key, None)
        if span is not None:
            span.end(outcome="completed")

    def task_failed(self, key: str, kind: str) -> None:
        self.registry.counter(
            "supervisor_failures_total",
            help="Task attempt failures, by taxonomy kind.",
            kind=kind,
        ).inc()
        if self.owner is not None:
            self.owner.replica_failed()

    def task_retried(self, key: str, delay_s: float) -> None:
        self.registry.counter(
            "supervisor_retries_total", help="Task retries scheduled."
        ).inc()
        self.registry.counter(
            "supervisor_backoff_seconds_total",
            help="Backoff wall seconds scheduled before retries.",
        ).inc(delay_s)

    def task_quarantined(self, key: str) -> None:
        self.registry.counter(
            "supervisor_quarantined_total", help="Tasks poisoned past retries."
        ).inc()
        span = self._task_spans.pop(key, None)
        if span is not None:
            span.end(outcome="quarantined")
        if self.owner is not None:
            self.owner.replica_quarantined()

    def pool_rebuilt(self) -> None:
        self.registry.counter(
            "supervisor_pool_rebuilds_total", help="Worker pool rebuilds."
        ).inc()

    def degraded(self) -> None:
        self.registry.counter(
            "supervisor_degraded_total",
            help="Falls back to in-process sequential execution.",
        ).inc()

    def tick(self) -> None:
        """Called from the supervision loop; drives owner flush/heartbeat."""
        if self.owner is not None:
            self.owner.tick()

    def close(self) -> None:
        """End any spans left open (e.g. tasks lost to a crash)."""
        for span in list(self._task_spans.values()):
            span.end(outcome="abandoned")
        self._task_spans.clear()


@dataclass
class ObsOptions:
    """What a :class:`CampaignObs` should export, and how often."""

    metrics_out: Optional[str] = None       #: JSONL metrics stream path
    metrics_interval_s: float = 5.0         #: sink flush interval
    prom_out: Optional[str] = None          #: Prometheus snapshot path
    trace_out: Optional[str] = None         #: merged Chrome trace path
    heartbeat_s: Optional[float] = None     #: terminal heartbeat interval
    obs_dir: Optional[str] = None           #: span/metrics exchange dir (temp if None)

    def __post_init__(self) -> None:
        if self.metrics_interval_s <= 0:
            raise ValueError(
                f"metrics_interval_s must be > 0, got {self.metrics_interval_s}"
            )

    @property
    def enabled(self) -> bool:
        return any(
            (self.metrics_out, self.prom_out, self.trace_out, self.heartbeat_s)
        )


class CampaignObs:
    """Campaign-level telemetry: root span, exporters, worker merge.

    The campaign calls :meth:`begin_campaign` / :meth:`end_campaign`
    around the sweep, :meth:`point_started` / :meth:`point_finished`
    around each grid point, and hands :meth:`worker_context` output to
    replica payloads so worker processes join the same trace.  Uses the
    process-global registry by default so rare-path metrics recorded by
    :mod:`repro.des.snapshot` and :mod:`repro.fti.fti` land in the same
    export.
    """

    def __init__(
        self,
        options: Optional[ObsOptions] = None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "campaign",
    ) -> None:
        self.options = options or ObsOptions()
        self.registry = registry if registry is not None else get_registry()
        self.tracer = Tracer()
        self.label = label
        self._owns_obs_dir = self.options.obs_dir is None
        self.obs_dir = (
            tempfile.mkdtemp(prefix="repro-obs-")
            if self._owns_obs_dir
            else self.options.obs_dir
        )
        self.sink: Optional[JsonlSink] = None
        if self.options.metrics_out:
            self.sink = JsonlSink(
                self.options.metrics_out,
                registry=self.registry,
                interval_s=self.options.metrics_interval_s,
            )
        self.heartbeat: Optional[CampaignHeartbeat] = None
        if self.options.heartbeat_s:
            self.heartbeat = CampaignHeartbeat(
                interval_s=self.options.heartbeat_s, label=label
            )
        self._root: Optional[Span] = None
        self._point: Optional[Span] = None
        self._closed = False

    # -- span plumbing -------------------------------------------------------

    def _ensure_root(self) -> Span:
        if self._root is None:
            self._root = self.tracer.start_span(self.label)
        return self._root

    def begin_campaign(self, total_replicas: int, points: int = 0) -> None:
        root = self._ensure_root()
        root.attrs.update(replicas=total_replicas, points=points)
        if self.heartbeat is not None:
            self.heartbeat.set_total(total_replicas)
        if self.sink is not None:
            self.sink.maybe_flush(force=True)

    def point_started(self, spec_key: str) -> None:
        self._ensure_root()
        self._point = self.tracer.start_span(f"point:{spec_key}", spec_key=spec_key)

    def point_finished(self) -> None:
        if self._point is not None:
            self._point.end()
            self._point = None
        self.tick()

    def supervisor_obs(self) -> SupervisorObs:
        parent = self._point if self._point is not None else self._ensure_root()
        return SupervisorObs(
            registry=self.registry,
            tracer=self.tracer,
            parent_span_id=parent.span_id,
            owner=self,
        )

    def worker_context(self, task_key: str) -> ObsContext:
        """The picklable context a replica payload carries into a worker."""
        return ObsContext(
            trace_id=self.tracer.trace_id,
            parent_span_id=derive_span_id(self.tracer.trace_id, "task", task_key),
            obs_dir=self.obs_dir,
            host_pid=os.getpid(),
        )

    # -- progress feed -------------------------------------------------------

    def replica_done(self, result: Optional[dict], from_journal: bool = False) -> None:
        if self.heartbeat is not None:
            events = 0
            if isinstance(result, dict):
                events = int(result.get("events_fired") or 0)
            self.heartbeat.replica_done(events, from_journal=from_journal)
        self.tick()

    def replica_failed(self) -> None:
        if self.heartbeat is not None:
            self.heartbeat.replica_failed()

    def replica_quarantined(self) -> None:
        if self.heartbeat is not None:
            self.heartbeat.replica_quarantined()

    # -- degradation-ladder hooks --------------------------------------------

    def suspend_exporters(self) -> None:
        """Ladder stage action: open the sink breaker (skipped, counted)."""
        if self.sink is not None:
            self.sink.suspend()

    def resume_exporters(self) -> None:
        """Ladder stage exit: reclose the sink breaker."""
        if self.sink is not None:
            self.sink.resume()

    def stage_changed(self, frm: str, to: str, reason: str) -> None:
        """Ladder transition observer: surface the stage in the heartbeat."""
        if self.heartbeat is not None:
            self.heartbeat.set_stage(to)
            self.heartbeat.beat(force=True)

    def tick(self) -> None:
        if self.sink is not None:
            self.sink.maybe_flush()
        if self.heartbeat is not None:
            self.heartbeat.beat()

    # -- finalization --------------------------------------------------------

    def merged_spans(self) -> list[Span]:
        """This process's spans merged with every worker dump."""
        own = {s.span_id: s for s in self.tracer.finished_spans()}
        for span in load_spans(self.obs_dir):
            own.setdefault(span.span_id, span)
        return sorted(own.values(), key=lambda s: (s.t_start, s.span_id))

    def end_campaign(self) -> None:
        """Close the root span, merge worker metrics, run every exporter."""
        if self._closed:
            return
        self._closed = True
        if self._point is not None:
            self._point.end()
            self._point = None
        if self._root is not None:
            self._root.end()
            self._root = None
        # Fold worker registry dumps in (skipping this process's own pid:
        # in-process replicas already wrote to this registry directly).
        from repro.obs.tracing import load_worker_metrics

        for records in load_worker_metrics(self.obs_dir, skip_pid=os.getpid()):
            self.registry.merge_records(records)
        if self.heartbeat is not None:
            self.heartbeat.beat(force=True)
        if self.sink is not None:
            self.sink.close()
        if self.options.prom_out:
            guarded_export(
                f"prometheus:{self.options.prom_out}",
                lambda: write_prometheus(self.options.prom_out, self.registry),
                self.registry,
            )
        if self.options.trace_out:
            spans = self.merged_spans()

            def _write_trace() -> None:
                from repro.core.trace import save_spans_chrome_trace

                save_spans_chrome_trace(spans, self.options.trace_out)

            guarded_export(
                f"chrome-trace:{self.options.trace_out}", _write_trace, self.registry
            )
        if self._owns_obs_dir:
            shutil.rmtree(self.obs_dir, ignore_errors=True)

    def __enter__(self) -> "CampaignObs":
        return self

    def __exit__(self, *exc) -> None:
        self.end_campaign()


def replica_obs_begin(ctx: Optional[ObsContext], seed: int):
    """Worker-side setup: join the campaign trace, open the replica span.

    Returns ``(tracer, engine_obs, replica_span)`` — all ``None`` when
    *ctx* is ``None`` (observability off).  Module-level so
    ``_run_replica`` stays a thin pure function.
    """
    if ctx is None:
        return None, None, None
    tracer = Tracer(ctx.trace_id, default_parent_id=ctx.parent_span_id)
    span = tracer.start_span("replica", seed=seed, pid_label=os.getpid())
    engine_obs = EngineObs(registry=get_registry(), tracer=tracer)
    return tracer, engine_obs, span


def replica_obs_end(ctx: Optional[ObsContext], tracer, span, result: dict) -> None:
    """Worker-side teardown: close the span, dump spans + metrics.

    Span dumps append-and-drain (a pooled worker runs many replicas);
    the metrics dump is the process's *cumulative* registry, atomically
    overwritten each time, so the campaign merges the last snapshot per
    worker pid.  In-process execution (pid == host pid) skips the
    metrics dump — it already shares the campaign's registry.
    """
    if ctx is None:
        return
    if span is not None:
        span.end(
            completed=bool(result.get("completed")),
            events=int(result.get("events_fired") or 0),
        )
    guarded_export(
        "worker-spans",
        lambda: tracer.dump_jsonl(spans_jsonl_path(ctx.obs_dir), drain=True),
    )
    if os.getpid() != ctx.host_pid:
        from repro.obs.tracing import dump_worker_metrics

        guarded_export(
            "worker-metrics",
            lambda: dump_worker_metrics(ctx.obs_dir, get_registry().collect()),
        )
