"""Span tracing with IDs that survive process boundaries.

A :class:`Span` is a named wall-clock interval with a ``trace_id``
(shared by everything in one campaign), a ``span_id`` and an optional
``parent_id``.  The campaign, its supervisor tasks, the replica worker
processes and the engine runs inside them each record spans; because
IDs for cross-process edges are *derived deterministically*
(:func:`derive_span_id` — a hash of the trace id plus a stable key),
the campaign process and a worker process independently compute the
same parent/child IDs without shipping live objects between them.

Concretely: the campaign opens a root span, derives the span id for
supervisor task ``"p0:3"`` as ``derive_span_id(trace_id, "task",
"p0:3")``, and hands the worker an :class:`ObsContext` carrying the
trace id and that derived id as ``parent_span_id``.  The worker's
spans (replica body, engine run) parent onto it; both sides dump spans
to JSONL files in a shared directory and :func:`load_spans` merges them
into the single timeline `core.trace` renders for Perfetto.

Spans use epoch wall-clock (`time.time`) so files written by different
processes align on a common axis.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Iterable, Optional


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


def derive_span_id(trace_id: str, *parts: object) -> str:
    """Deterministic 16-hex-digit span id for a cross-process edge.

    Any process holding the trace id and the same key *parts* computes
    the same id, which is how parent/child links line up across the
    campaign/worker boundary without passing span objects around.
    """
    h = hashlib.sha256(trace_id.encode())
    for part in parts:
        h.update(b"\x00" + str(part).encode())
    return h.hexdigest()[:16]


@dataclass
class Span:
    """One named interval; ``end()`` stamps the close time."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    t_start: float = 0.0
    t_end: Optional[float] = None
    pid: int = 0
    tid: int = 0
    attrs: dict = field(default_factory=dict)
    _tracer: Optional["Tracer"] = field(default=None, repr=False, compare=False)

    def end(self, **attrs) -> "Span":
        if self.t_end is None:
            self.t_end = time.time()
            if attrs:
                self.attrs.update(attrs)
            if self._tracer is not None:
                self._tracer._close(self)
        return self

    @property
    def duration(self) -> float:
        return (self.t_end if self.t_end is not None else time.time()) - self.t_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            t_start=float(data["t_start"]),
            t_end=None if data.get("t_end") is None else float(data["t_end"]),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs") or {}),
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class Tracer:
    """Collects spans for one process.

    ``start_span`` with the default ``push=True`` maintains an implicit
    stack: nested calls parent onto the enclosing open span.  Pass
    ``push=False`` (plus an explicit ``parent_id`` or ``span_id``) for
    detached spans — e.g. the supervisor tracks many concurrently
    running task spans, which cannot live on one stack.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        default_parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.default_parent_id = default_parent_id
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._lock = threading.Lock()
        self._next_tid = 0
        # Auto-assigned span ids must be unique across every process in
        # the trace; a per-tracer nonce keeps two workers' span #3 apart.
        self._nonce = uuid.uuid4().hex[:12]
        self._seq = 0

    def start_span(
        self,
        name: str,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        push: bool = True,
        tid: Optional[int] = None,
        **attrs,
    ) -> Span:
        with self._lock:
            if parent_id is None:
                parent_id = (
                    self._stack[-1].span_id if self._stack else self.default_parent_id
                )
            if tid is None:
                tid = self._stack[-1].tid if (push and self._stack) else self._next_tid
                if not (push and self._stack):
                    self._next_tid += 1
            self._seq += 1
            span = Span(
                name=name,
                trace_id=self.trace_id,
                span_id=span_id
                or derive_span_id(self.trace_id, self._nonce, self._seq),
                parent_id=parent_id,
                t_start=time.time(),
                pid=os.getpid(),
                tid=tid,
                attrs=dict(attrs),
                _tracer=self,
            )
            self.spans.append(span)
            if push:
                self._stack.append(span)
            return span

    def _close(self, span: Span) -> None:
        with self._lock:
            if span in self._stack:
                # Close any children left open below it, then pop it.
                while self._stack and self._stack[-1] is not span:
                    self._stack.pop()
                if self._stack:
                    self._stack.pop()

    def finished_spans(self) -> list[Span]:
        return [s for s in self.spans if s.t_end is not None]

    # -- persistence ---------------------------------------------------------

    def dump_jsonl(self, path: str, append: bool = True, drain: bool = False) -> int:
        """Write every *finished* span to *path* as JSON lines.

        Returns the number of spans written.  Open spans are skipped —
        dump again after closing them.  With ``drain=True`` the written
        spans are removed from the tracer, so a long-lived worker that
        dumps after every task appends each span exactly once.
        """
        spans = self.finished_spans()
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        if drain:
            written = {id(s) for s in spans}
            with self._lock:
                self.spans = [s for s in self.spans if id(s) not in written]
        return len(spans)


def load_spans(source: str) -> list[Span]:
    """Load spans from a ``spans-*.jsonl`` directory or a single file.

    Later records win on duplicate span ids (a process may dump its
    cumulative span list more than once).  Malformed lines are skipped:
    a worker killed mid-write must not poison the merged timeline.
    """
    if os.path.isdir(source):
        paths = sorted(
            os.path.join(source, n)
            for n in os.listdir(source)
            if n.startswith("spans-") and n.endswith(".jsonl")
        )
    else:
        paths = [source]
    by_id: dict[str, Span] = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        span = Span.from_dict(json.loads(line))
                    except (ValueError, KeyError, TypeError):
                        continue  # torn tail or foreign line
                    by_id[span.span_id] = span
        except OSError:
            continue
    return sorted(by_id.values(), key=lambda s: (s.t_start, s.span_id))


@dataclass(frozen=True)
class ObsContext:
    """Everything a worker process needs to join the campaign's trace.

    Carried inside the replica payload tuple; the worker builds its own
    :class:`Tracer` with ``default_parent_id=parent_span_id`` and dumps
    spans/metrics into ``obs_dir`` for the campaign to merge.
    ``host_pid`` lets in-process (sequential/degraded) execution skip
    the metrics dump that would double-count the campaign's own
    registry.
    """

    trace_id: str
    parent_span_id: Optional[str]
    obs_dir: str
    host_pid: int


def spans_jsonl_path(obs_dir: str, pid: Optional[int] = None) -> str:
    """Per-process span dump path inside *obs_dir*."""
    return os.path.join(obs_dir, f"spans-{os.getpid() if pid is None else pid}.jsonl")


def metrics_json_path(obs_dir: str, pid: Optional[int] = None) -> str:
    """Per-process metrics dump path inside *obs_dir*."""
    return os.path.join(obs_dir, f"metrics-{os.getpid() if pid is None else pid}.json")


def dump_worker_metrics(obs_dir: str, records: Iterable[dict]) -> str:
    """Atomically write this process's cumulative metric records."""
    path = metrics_json_path(obs_dir)
    tmp = f"{path}.tmp-{os.getpid()}"
    os.makedirs(obs_dir, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(list(records), fh)
    os.replace(tmp, path)
    return path


def load_worker_metrics(obs_dir: str, skip_pid: Optional[int] = None) -> list[list[dict]]:
    """Read every ``metrics-<pid>.json`` dump except *skip_pid*'s.

    Each dump is a process's *cumulative* registry, so the last file per
    pid (there is only one — dumps overwrite) is summed across pids by
    the caller via :func:`repro.obs.metrics.merge_records`.
    """
    out: list[list[dict]] = []
    if not os.path.isdir(obs_dir):
        return out
    for name in sorted(os.listdir(obs_dir)):
        if not (name.startswith("metrics-") and name.endswith(".json")):
            continue
        try:
            pid = int(name[len("metrics-") : -len(".json")])
        except ValueError:
            continue
        if skip_pid is not None and pid == skip_pid:
            continue
        try:
            with open(os.path.join(obs_dir, name), encoding="utf-8") as fh:
                records = json.load(fh)
        except (OSError, ValueError):
            continue  # torn write from a killed worker
        if isinstance(records, list):
            out.append(records)
    return out
