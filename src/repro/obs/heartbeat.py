"""Live terminal heartbeat for long campaign runs.

One rate-limited status line to stderr::

    [campaign] 37/128 done · 2 failed · 1 quarantined · 184k ev/s · ETA 0:42

Progress is replica-granular (the campaign knows its total up front),
the event rate is cumulative engine events over wall time, and the ETA
extrapolates from mean seconds-per-completed-replica.  Writes go
through :func:`repro.obs.export.guarded_export`, so a broken stderr
(or redirected file) never interrupts the simulation.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.obs.export import guarded_export


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m}:{s:02d}"


def _fmt_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.0f}k"
    return f"{rate:.0f}"


class CampaignHeartbeat:
    """Tracks campaign progress and prints a throttled status line.

    The campaign calls :meth:`replica_done` / :meth:`replica_failed` /
    :meth:`replica_quarantined` as results arrive and :meth:`beat` from
    its supervision loop; :meth:`beat` is a no-op until ``interval_s``
    has elapsed since the last line.
    """

    def __init__(
        self,
        interval_s: float = 2.0,
        stream: Optional[TextIO] = None,
        label: str = "campaign",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.stream = stream
        self.label = label
        self.total = 0
        self.done = 0
        self.failed = 0
        self.quarantined = 0
        self.events = 0
        self.resumed = 0
        self.lines_printed = 0
        #: degradation-ladder stage shown in the line ("" or "normal" hides it)
        self.stage = ""
        self._t_start = time.monotonic()
        self._last_beat: Optional[float] = None

    # -- progress feed -------------------------------------------------------

    def set_total(self, total: int) -> None:
        self.total = total

    def add_total(self, more: int) -> None:
        self.total += more

    def replica_done(self, events_fired: int = 0, from_journal: bool = False) -> None:
        self.done += 1
        self.events += int(events_fired)
        if from_journal:
            self.resumed += 1

    def replica_failed(self) -> None:
        self.failed += 1

    def replica_quarantined(self) -> None:
        self.quarantined += 1
        self.done += 1  # quarantined replicas no longer count toward ETA work

    def set_stage(self, stage: str) -> None:
        """Record the degradation-ladder stage for the status line."""
        self.stage = stage

    # -- output --------------------------------------------------------------

    def status_line(self) -> str:
        elapsed = max(time.monotonic() - self._t_start, 1e-9)
        parts = [f"{self.done}/{self.total or '?'} done"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.resumed:
            parts.append(f"{self.resumed} from journal")
        if self.events:
            parts.append(f"{_fmt_rate(self.events / elapsed)} ev/s")
        fresh = self.done - self.resumed
        remaining = max(self.total - self.done, 0)
        if fresh > 0 and remaining > 0:
            parts.append(f"ETA {_fmt_eta(elapsed / fresh * remaining)}")
        if self.stage and self.stage != "normal":
            parts.append(f"degraded: {self.stage}")
        return f"[{self.label}] " + " · ".join(parts)

    def beat(self, force: bool = False) -> bool:
        """Print the status line if the interval elapsed (or *force*)."""
        now = time.monotonic()
        if not force and self._last_beat is not None:
            if now - self._last_beat < self.interval_s:
                return False
        self._last_beat = now
        line = self.status_line()

        def _write() -> None:
            stream = self.stream if self.stream is not None else sys.stderr
            stream.write(line + "\n")
            stream.flush()

        if guarded_export(f"heartbeat:{self.label}", _write):
            self.lines_printed += 1
            return True
        return False
