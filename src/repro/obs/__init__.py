"""Unified telemetry: metrics registry, span tracing, exporters.

``repro.obs`` is the observability layer the rest of the package
instruments itself with (SST ships a statistics subsystem for the same
reason — model validation needs numbers the simulator itself collects):

- :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges, fixed-bucket histograms and streaming quantiles,
  all optionally labeled.
- :mod:`repro.obs.tracing` — :class:`Tracer` producing nested spans
  whose IDs propagate campaign → supervisor task → worker process →
  engine run, so one campaign yields a single merged timeline.
- :mod:`repro.obs.export` — JSONL metric sink, Prometheus
  text-exposition writer and a strict parser for validating it.
- :mod:`repro.obs.heartbeat` — live terminal progress line for
  campaigns (replicas done/failed/quarantined, events/s, ETA).
- :mod:`repro.obs.flightrec` — per-replica bounded flight recorder: an
  in-memory event ring plus a crash-surviving spill file, dumped
  atomically on exit and post-mortemed by ``repro analyze``.
- :mod:`repro.obs.instrument` — the adapters that hook the registry and
  tracer into :class:`~repro.des.engine.Engine`,
  :class:`~repro.core.supervisor.TaskSupervisor` and
  :class:`~repro.core.campaign.ResilienceCampaign`.

Everything here is stdlib-only and optional: no instrumented code path
pays more than a pointer test when observability is off.
"""

from repro.obs.export import (
    JsonlSink,
    parse_prometheus_text,
    registry_to_prometheus,
    summarize_metrics,
    write_prometheus,
)
from repro.obs.flightrec import (
    FlightRecorder,
    flight_dump_path,
    flight_spill_path,
    load_flight_dir,
    load_flight_dump,
)
from repro.obs.heartbeat import CampaignHeartbeat
from repro.obs.instrument import CampaignObs, EngineObs, ObsOptions, SupervisorObs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StreamingQuantile,
    get_registry,
    merge_records,
    set_registry,
)
from repro.obs.tracing import (
    ObsContext,
    Span,
    Tracer,
    derive_span_id,
    load_spans,
    new_trace_id,
)

__all__ = [
    "CampaignHeartbeat",
    "CampaignObs",
    "Counter",
    "EngineObs",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "ObsContext",
    "ObsOptions",
    "Span",
    "StreamingQuantile",
    "SupervisorObs",
    "Tracer",
    "derive_span_id",
    "flight_dump_path",
    "flight_spill_path",
    "get_registry",
    "load_flight_dir",
    "load_flight_dump",
    "load_spans",
    "merge_records",
    "new_trace_id",
    "parse_prometheus_text",
    "registry_to_prometheus",
    "set_registry",
    "summarize_metrics",
    "write_prometheus",
]
