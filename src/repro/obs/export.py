"""Metric exporters: JSONL stream, Prometheus text exposition, summaries.

Three consumers, three formats:

- :class:`JsonlSink` — appends one ``{"ts": ..., "metrics": [...]}``
  line per flush interval; cheap to tail, trivially mergeable.
- :func:`write_prometheus` / :func:`registry_to_prometheus` — the
  Prometheus text exposition format (version 0.0.4), one snapshot per
  write.  :func:`parse_prometheus_text` is the matching *strict*
  parser used by CI to validate what we emit.
- :func:`summarize_metrics` — human-oriented roll-up of either format
  for the ``repro metrics summarize`` CLI.

Exporter I/O failures never stop a simulation: :func:`guarded_export`
logs the first failure per sink via the ``repro.obs`` logger, counts
every failure in ``obs_export_errors_total{sink=...}`` and keeps going.
"""

from __future__ import annotations

import json
import logging
import math
import os
import re
import time
from typing import Callable, Mapping, Optional

from repro.guard.circuit import CircuitBreaker
from repro.guard.fsfault import fault_check, fsync_dir
from repro.obs.metrics import MetricsRegistry, get_registry

log = logging.getLogger("repro.obs")

_warned_sinks: set[str] = set()


def guarded_export(sink: str, fn: Callable[[], object], registry=None) -> bool:
    """Run exporter *fn*; on I/O failure log once per *sink*, count it
    in ``obs_export_errors_total`` and return ``False``."""
    try:
        fn()
        return True
    except OSError as exc:
        reg = registry if registry is not None else get_registry()
        reg.counter(
            "obs_export_errors_total",
            help="Exporter I/O failures, by sink.",
            sink=sink,
        ).inc()
        if sink not in _warned_sinks:
            _warned_sinks.add(sink)
            log.warning("exporter %s failed (%s); continuing without it", sink, exc)
        return False


def reset_export_warnings() -> None:
    """Forget which sinks have already logged (test hook)."""
    _warned_sinks.clear()


# -- JSONL sink ---------------------------------------------------------------


class JsonlSink:
    """Appends registry snapshots to a JSONL file on an interval.

    ``maybe_flush()`` is cheap when the interval has not elapsed (one
    monotonic read); ``maybe_flush(force=True)`` always writes.  Each
    line is ``{"ts": <epoch seconds>, "metrics": registry.collect()}``.

    A :class:`~repro.guard.circuit.CircuitBreaker` guards the sink: a
    failed write (or a degradation-ladder :meth:`suspend`) opens the
    circuit and flushes are *skipped* — counted in
    ``obs_export_suspended_total``, never fatal — until the breaker's
    half-open probe (or a ladder :meth:`resume`) lets a write through
    again.
    """

    def __init__(
        self,
        path: str,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 5.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.path = path
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = float(interval_s)
        self.lines_written = 0
        self.suspended_skips = 0
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._last_flush: Optional[float] = None

    def suspend(self) -> None:
        """Ladder stage action: stop flushing until :meth:`resume`."""
        self.breaker.force_open()

    def resume(self) -> None:
        """Ladder stage exit: reclose the breaker immediately."""
        self.breaker.reset()

    def maybe_flush(self, force: bool = False) -> bool:
        now = time.monotonic()
        if not force and self._last_flush is not None:
            if now - self._last_flush < self.interval_s:
                return False
        self._last_flush = now
        if not self.breaker.allow():
            self.suspended_skips += 1
            self.registry.counter(
                "obs_export_suspended_total",
                help="Exporter flushes skipped while suspended, by sink.",
                sink=f"jsonl:{self.path}",
            ).inc()
            return False

        def _write() -> None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            line = json.dumps(
                {"ts": time.time(), "metrics": self.registry.collect()},
                sort_keys=True,
            )
            fault_check("metrics.jsonl", self.path, len(line) + 1)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

        if guarded_export(f"jsonl:{self.path}", _write, self.registry):
            self.breaker.success()
            self.lines_written += 1
            return True
        self.breaker.failure()
        return False

    def close(self) -> None:
        self.maybe_flush(force=True)


# -- Prometheus text exposition ----------------------------------------------


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _fmt_labels(labels: Mapping[str, str], extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for k in sorted(merged):
        v = str(merged[k]).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{k}="{v}"')
    return "{" + ",".join(parts) + "}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def registry_to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4.

    Histograms emit cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``; streaming quantiles emit ``{quantile=...}`` summary
    series (Prometheus ``summary`` type) plus ``_sum`` and ``_count``.
    """
    reg = registry if registry is not None else get_registry()
    records = reg.collect()
    lines: list[str] = []
    seen_headers: set[str] = set()
    for rec in records:
        name, kind, labels = rec["name"], rec["kind"], rec["labels"]
        data = rec["data"]
        prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "histogram",
                     "quantile": "summary"}[kind]
        if name not in seen_headers:
            seen_headers.add(name)
            if rec.get("help"):
                lines.append(f"# HELP {name} {_escape_help(rec['help'])}")
            lines.append(f"# TYPE {name} {prom_type}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(data['value'])}")
        elif kind == "histogram":
            bounds, counts = data["buckets"]
            cum = 0
            for bound, count in zip(bounds, counts):
                cum += count
                le = "+Inf" if bound == "+Inf" else _fmt_value(float(bound))
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': le})} {cum}"
                )
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(data['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {data['count']}")
        else:  # quantile -> summary
            for q in sorted(data["quantiles"], key=float):
                est = data["quantiles"][q]
                lines.append(
                    f"{name}{_fmt_labels(labels, {'quantile': q})} {_fmt_value(est)}"
                )
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(data['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: Optional[MetricsRegistry] = None) -> str:
    """Atomically and durably write the exposition snapshot to *path*."""
    text = registry_to_prometheus(registry)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fault_check("metrics.prom", path, len(text))
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(parent)  # the rename lives in the directory inode
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


# -- strict text-format parser (CI validation) -------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<ts>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\["\\n])*)"\s*(?:,|$)'
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class PrometheusParseError(ValueError):
    """The text is not valid Prometheus exposition format."""


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_PAIR_RE.match(text, pos)
        if m is None:
            raise PrometheusParseError(f"malformed label section {text!r}")
        raw = m.group("val")
        labels[m.group("key")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = m.end()
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        raise PrometheusParseError(f"line {line_no}: bad sample value {raw!r}") from None


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Strictly parse exposition text; raise on anything malformed.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}``.  Enforces: well-formed
    HELP/TYPE comments, TYPE before samples of that family, valid metric
    and label names, parseable values, and histogram bucket monotonicity.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"type": "untyped", "help": None, "samples": []}
        )

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Plain comments are legal; '# HELP'/'# TYPE' must be well formed.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise PrometheusParseError(f"line {line_no}: malformed {parts[1]}")
                continue
            keyword, name = parts[1], parts[2]
            if not re.fullmatch(_METRIC_NAME, name):
                raise PrometheusParseError(
                    f"line {line_no}: invalid metric name {name!r}"
                )
            if keyword == "HELP":
                family(name)["help"] = parts[3] if len(parts) > 3 else ""
            else:
                if len(parts) < 4 or parts[3] not in _VALID_TYPES:
                    raise PrometheusParseError(
                        f"line {line_no}: invalid TYPE "
                        f"{parts[3] if len(parts) > 3 else None!r}"
                    )
                fam = family(name)
                if fam["samples"]:
                    raise PrometheusParseError(
                        f"line {line_no}: TYPE for {name!r} after its samples"
                    )
                fam["type"] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise PrometheusParseError(f"line {line_no}: malformed sample {line!r}")
        sample_name = m.group("name")
        labels = _parse_labels(m.group("labels")) if m.group("labels") else {}
        value = _parse_value(m.group("value"), line_no)
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
                break
        family(base)["samples"].append((sample_name, labels, value))

    # Histogram bucket sanity: cumulative counts must be monotonic and
    # end with +Inf per label-set.
    for name, fam in families.items():
        if fam["type"] != "histogram":
            continue
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        for sample_name, labels, value in fam["samples"]:
            if sample_name != f"{name}_bucket":
                continue
            if "le" not in labels:
                raise PrometheusParseError(f"{name}: bucket sample missing 'le'")
            le = labels["le"]
            bound = float("inf") if le == "+Inf" else float(le)
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault(key, []).append((bound, value))
        for key, entries in buckets.items():
            entries.sort(key=lambda bv: bv[0])
            counts = [v for _, v in entries]
            if counts != sorted(counts):
                raise PrometheusParseError(f"{name}: bucket counts not cumulative")
            if not entries or not math.isinf(entries[-1][0]):
                raise PrometheusParseError(f"{name}: missing +Inf bucket")
    return families


# -- summaries ----------------------------------------------------------------


def _load_metric_records(path: str) -> tuple[str, list[dict]]:
    """Read *path* as JSONL metrics or Prometheus text.

    For JSONL, the *last* line wins (each line is a cumulative
    snapshot).  Returns ``(format, records)`` where records follow the
    :meth:`MetricsRegistry.collect` shape (Prometheus input is reduced
    to counter/gauge-style records).
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        raise ValueError(f"{path}: empty metrics file")
    first = stripped.splitlines()[0]
    if first.startswith("{"):
        last_records: Optional[list] = None
        lines = 0
        for line in stripped.splitlines():
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if not isinstance(doc, dict) or "metrics" not in doc:
                raise ValueError(f"{path}: not a metrics JSONL stream")
            last_records = doc["metrics"]
            lines += 1
        return f"jsonl ({lines} snapshots)", list(last_records or [])
    families = parse_prometheus_text(text)
    records = []
    for name, fam in sorted(families.items()):
        for sample_name, labels, value in fam["samples"]:
            records.append(
                {
                    "name": sample_name,
                    "kind": "gauge" if fam["type"] != "counter" else "counter",
                    "help": fam["help"] or "",
                    "labels": labels,
                    "data": {"value": value},
                }
            )
    return "prometheus", records


#: Counters worth calling out in ``repro metrics summarize`` whenever
#: they are nonzero — each marks degraded behaviour that was survived.
_NOTABLE_COUNTERS = {
    "snapshot_corrupt_skipped_total": "corrupt snapshot(s) skipped during recovery",
    "snapshot_autosnap_disabled_total": "autosnapshot cadence(s) disabled by disk faults",
    "obs_export_errors_total": "exporter write failure(s)",
    "obs_export_suspended_total": "exporter flush(es) skipped while suspended",
    "guard_ladder_transitions_total": "degradation-ladder transition(s)",
    "guard_fsfaults_injected_total": "filesystem fault(s) injected",
    "guard_action_errors_total": "ladder stage action error(s)",
    "net_reroutes_total": "message(s) priced over a detour route",
    "net_retransmits_total": "expected retransmission(s) on lossy links",
    "net_partition_stalls_total": "recovery stall(s) on a partitioned network",
}


def summarize_metrics(path: str) -> str:
    """Human-readable summary of a metrics file (JSONL or Prometheus)."""
    fmt, records = _load_metric_records(path)
    out = [f"{path}: {fmt}, {len(records)} series"]
    notable: dict[str, float] = {}
    for rec in records:
        base = rec["name"]
        if base in _NOTABLE_COUNTERS and rec["kind"] in ("counter", "gauge"):
            value = rec["data"].get("value") or 0
            if value:
                notable[base] = notable.get(base, 0) + value
    for rec in records:
        labels = _fmt_labels(rec.get("labels") or {})
        data = rec["data"]
        kind = rec["kind"]
        if kind in ("counter", "gauge"):
            body = _fmt_value(data["value"])
        elif kind == "histogram":
            body = f"count={data['count']} sum={_fmt_value(data['sum'])}"
        else:  # quantile
            qs = " ".join(
                f"p{float(q) * 100:g}={_fmt_value(v)}"
                for q, v in sorted(data["quantiles"].items(), key=lambda kv: float(kv[0]))
            )
            body = f"count={data['count']} {qs}"
        out.append(f"  {rec['name']}{labels} [{kind}] {body}")
    for name in sorted(notable):
        out.append(
            f"  note: {_fmt_value(notable[name])} {_NOTABLE_COUNTERS[name]} ({name})"
        )
    return "\n".join(out)
