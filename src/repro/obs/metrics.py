"""Process-wide metrics: counters, gauges, histograms, quantiles.

The model follows SST's statistics subsystem (and Prometheus, whose
text exposition :mod:`repro.obs.export` writes): a registry owns named
metric *families*, each family holds one series per label-set, and the
whole registry collapses to a list of plain-dict records that survive
JSON round-trips and can be merged across processes.

Four instrument kinds:

- :class:`Counter` — monotonically increasing float (``inc``).
- :class:`Gauge` — set-to-current-value float (``set``/``inc``).
- :class:`Histogram` — fixed upper-bound buckets plus sum/count,
  Prometheus-style cumulative on export.
- :class:`StreamingQuantile` — P² (Jain & Chlamtac 1985) single-pass
  quantile estimates with O(1) memory per tracked quantile; used where
  latency distributions matter but bucket bounds aren't known up front.

Hot-path cost: ``Counter.inc`` / ``Histogram.observe`` are one or two
attribute updates; series lookups (``registry.counter(...)`` with
labels) are dict hits and should be hoisted out of inner loops by the
instrumentation layer.

A process-global registry (:func:`get_registry`) lets rare-path code
(FTI checkpoints, snapshot writes) record metrics without plumbing a
registry handle through every constructor; worker processes dump it and
the campaign merges the dumps (:func:`merge_records`).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds (seconds-ish, log-spaced).
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
)

#: Default tracked quantiles for :class:`StreamingQuantile`.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class MetricError(ValueError):
    """Invalid metric/label name or conflicting re-registration."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    out = []
    for k in sorted(labels):
        if not _LABEL_RE.match(k):
            raise MetricError(f"invalid label name {k!r}")
        out.append((k, str(labels[k])))
    return tuple(out)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def merge(self, data: Mapping) -> None:
        self.value += float(data["value"])


class Gauge:
    """Set-to-current-value instrument."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def merge(self, data: Mapping) -> None:
        # Last writer wins: a merged gauge reports the merged-in sample.
        self.value = float(data["value"])


class Histogram:
    """Fixed upper-bound bucket histogram with sum and count.

    Buckets store per-bucket (non-cumulative) counts internally; the
    exporter produces Prometheus-style cumulative ``le`` buckets with a
    trailing ``+Inf``.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        return {
            "buckets": [list(self.bounds) + ["+Inf"], list(self.counts)],
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: Mapping) -> None:
        bounds, counts = data["buckets"]
        if tuple(float(b) for b in bounds[:-1]) != self.bounds:
            raise MetricError("cannot merge histograms with different buckets")
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += float(data["sum"])
        self.count += int(data["count"])


class StreamingQuantile:
    """P² single-pass quantile estimator (Jain & Chlamtac, 1985).

    Maintains five markers per tracked quantile; estimates converge to
    the true quantile without storing observations.  Exact for the
    first five samples per quantile.
    """

    __slots__ = ("quantiles", "_states", "sum", "count", "min", "max")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        qs = tuple(float(q) for q in quantiles)
        if not qs or any(not (0.0 < q < 1.0) for q in qs):
            raise MetricError(f"quantiles must lie in (0, 1): {quantiles!r}")
        self.quantiles = qs
        # Per-quantile P² state: (heights q[5], positions n[5], initial buffer)
        self._states: list[dict] = [{"q": [], "n": [0, 1, 2, 3, 4]} for _ in qs]
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for p, st in zip(self.quantiles, self._states):
            self._observe_one(st, p, value)

    @staticmethod
    def _observe_one(st: dict, p: float, x: float) -> None:
        q = st["q"]
        if len(q) < 5:
            q.append(x)
            q.sort()
            return
        n = st["n"]
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        # Desired marker positions after this observation.
        count = n[4] + 1  # observations seen (n is 0-based positions)
        d = [
            0.0,
            (count - 1) * p / 2.0,
            (count - 1) * p,
            (count - 1) * (1.0 + p) / 2.0,
            float(count - 1),
        ]
        for i in (1, 2, 3):
            diff = d[i] - n[i]
            if (diff >= 1 and n[i + 1] - n[i] > 1) or (diff <= -1 and n[i - 1] - n[i] < -1):
                step = 1 if diff >= 1 else -1
                cand = StreamingQuantile._parabolic(q, n, i, step)
                if q[i - 1] < cand < q[i + 1]:
                    q[i] = cand
                else:  # fall back to linear prediction
                    q[i] = q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])
                n[i] += step

    @staticmethod
    def _parabolic(q: list, n: list, i: int, step: int) -> float:
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def estimate(self, quantile: float) -> float:
        """Current estimate for *quantile* (must be a tracked one)."""
        try:
            st = self._states[self.quantiles.index(float(quantile))]
        except ValueError:
            raise MetricError(f"quantile {quantile} is not tracked") from None
        q = st["q"]
        if not q:
            return float("nan")
        if len(q) < 5:
            # Exact small-sample quantile (nearest-rank).
            idx = min(len(q) - 1, int(round(quantile * (len(q) - 1))))
            return sorted(q)[idx]
        return q[2]

    def snapshot(self) -> dict:
        return {
            "quantiles": {str(p): self.estimate(p) for p in self.quantiles},
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, data: Mapping) -> None:
        """Count-weighted approximate merge of another snapshot.

        P² states cannot be merged exactly; the estimate is a
        count-weighted average of the two quantile estimates, which is
        adequate for cross-process roll-ups of similar distributions.
        """
        other_count = int(data["count"])
        if other_count == 0:
            return
        mine = self.count
        for p in self.quantiles:
            theirs = data["quantiles"].get(str(p))
            if theirs is None:
                continue
            if mine == 0:
                est = float(theirs)
            else:
                est = (self.estimate(p) * mine + float(theirs) * other_count) / (
                    mine + other_count
                )
            st = self._states[self.quantiles.index(p)]
            if len(st["q"]) >= 5:
                st["q"][2] = est
            else:
                st["q"] = [est] * 5
        self.sum += float(data["sum"])
        self.count += other_count
        if data.get("min") is not None:
            self.min = min(self.min, float(data["min"]))
        if data.get("max") is not None:
            self.max = max(self.max, float(data["max"]))


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "quantile": StreamingQuantile,
}


class _Family:
    """All series of one metric name (one per label-set)."""

    __slots__ = ("name", "kind", "help", "_ctor_kwargs", "series")

    def __init__(self, name: str, kind: str, help_text: str, ctor_kwargs: dict) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self._ctor_kwargs = ctor_kwargs
        self.series: dict[tuple[tuple[str, str], ...], object] = {}

    def get(self, labels: Mapping[str, str]):
        key = _check_labels(labels) if labels else ()
        inst = self.series.get(key)
        if inst is None:
            inst = _KINDS[self.kind](**self._ctor_kwargs)
            self.series[key] = inst
        return inst


class MetricsRegistry:
    """Named metric families; the unit of export and merge.

    ``counter``/``gauge``/``histogram``/``quantile`` are get-or-create:
    repeated calls with the same name and labels return the same
    instrument, so callers keep no bookkeeping.  Re-registering a name
    as a different kind raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help_text: str, **ctor_kwargs) -> _Family:
        _check_name(name)
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, kind, help_text, ctor_kwargs)
                self._families[name] = fam
            elif fam.kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {fam.kind}, not {kind}"
                )
            return fam

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._family(name, "counter", help).get(labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._family(name, "gauge", help).get(labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._family(name, "histogram", help, buckets=buckets).get(labels)

    def quantile(
        self,
        name: str,
        help: str = "",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        **labels: str,
    ) -> StreamingQuantile:
        return self._family(name, "quantile", help, quantiles=quantiles).get(labels)

    # -- export / merge ------------------------------------------------------

    def collect(self) -> list[dict]:
        """Snapshot every series as a JSON-safe record list.

        Record shape: ``{"name", "kind", "help", "labels": {...},
        "data": {...}}`` where ``data`` is the instrument's snapshot.
        Families are emitted sorted by name, series by label-set, so the
        output is deterministic.
        """
        out: list[dict] = []
        with self._lock:
            fams = sorted(self._families.values(), key=lambda f: f.name)
            for fam in fams:
                for key in sorted(fam.series):
                    out.append(
                        {
                            "name": fam.name,
                            "kind": fam.kind,
                            "help": fam.help,
                            "labels": dict(key),
                            "data": fam.series[key].snapshot(),
                        }
                    )
        return out

    def merge_records(self, records: Iterable[Mapping]) -> None:
        """Fold exported *records* (e.g. from a worker dump) into this
        registry, creating any missing families/series."""
        for rec in records:
            kind = rec["kind"]
            if kind not in _KINDS:
                raise MetricError(f"unknown metric kind {kind!r}")
            ctor_kwargs = {}
            if kind == "histogram":
                bounds = rec["data"]["buckets"][0][:-1]
                ctor_kwargs["buckets"] = tuple(float(b) for b in bounds)
            elif kind == "quantile":
                ctor_kwargs["quantiles"] = tuple(
                    float(q) for q in sorted(rec["data"]["quantiles"], key=float)
                )
            fam = self._family(rec["name"], kind, rec.get("help", ""), **ctor_kwargs)
            fam.get(rec.get("labels") or {}).merge(rec["data"])

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


def merge_records(*record_lists: Iterable[Mapping]) -> list[dict]:
    """Merge several exported record lists into one (fresh registry)."""
    reg = MetricsRegistry()
    for records in record_lists:
        reg.merge_records(records)
    return reg.collect()


# -- process-global registry --------------------------------------------------

_global_registry: Optional[MetricsRegistry] = None
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry (created on first use)."""
    global _global_registry
    if _global_registry is None:
        with _global_lock:
            if _global_registry is None:
                _global_registry = MetricsRegistry()
    return _global_registry


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace the process-global registry (``None`` resets to fresh)."""
    global _global_registry
    with _global_lock:
        _global_registry = registry
