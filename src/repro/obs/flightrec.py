"""Bounded ring-buffer flight recorder for post-mortem forensics.

The recorder keeps the last *capacity* noteworthy records (fault
injections, recovery phases, periodic engine ticks) in a fixed-size
deque, so its steady-state cost is one dict append regardless of run
length.  Two durability paths make the buffer useful after the fact:

* **Spill** (``spill_path``): every record is also appended to a live
  JSONL file and flushed, so a replica killed with SIGKILL leaves at
  worst a torn final line.  :func:`load_flight_dump` keeps whole lines
  only and skips malformed ones, mirroring the WAL's torn-tail
  handling.  A spill I/O error disables spilling for the rest of the
  run — recording never interrupts the simulation.
* **Dump** (:meth:`FlightRecorder.dump`): on normal exit (completed,
  aborted, wrong result) the ring is written atomically with the
  repo-wide fsync'd atomic-write idiom (temp file → fsync → rename →
  directory fsync), so readers never observe a half-written dump.

Dumps are out-of-band artifacts named by replica seed
(:func:`flight_dump_path`); nothing about them enters the campaign
journal or report, which keeps those bit-identical with recording on
or off.
"""

from __future__ import annotations

import collections
import json
import os
import tempfile
from typing import Optional

from repro.guard.fsfault import fault_check, fsync_dir

#: spill files stop growing past this many records (a truncation marker
#: is written once); the ring itself is always bounded by ``capacity``
MAX_SPILL_RECORDS = 200_000


def flight_spill_path(directory: str, seed: int) -> str:
    """Live spill file for the replica seeded with *seed*."""
    return os.path.join(directory, f"flight-{seed}.live.jsonl")


def flight_dump_path(directory: str, seed: int) -> str:
    """Final atomic dump for the replica seeded with *seed*."""
    return os.path.join(directory, f"flight-{seed}.jsonl")


class FlightRecorder:
    """Bounded in-memory recorder with optional live spill.

    Parameters
    ----------
    capacity:
        Ring size — the newest *capacity* records survive to the dump.
    spill_path:
        Optional JSONL file receiving every record as it happens
        (flushed per record, so a SIGKILL loses at most a torn tail).
    tick_stride:
        Engine hot-loop sampling stride (power of two).  The engine
        masks its event counter with ``tick_stride - 1``, so detached
        recorders cost one ``is not None`` test per event and attached
        ones a mask test plus one record per *tick_stride* events.
    """

    def __init__(
        self,
        capacity: int = 4096,
        spill_path: Optional[str] = None,
        tick_stride: int = 1024,
    ) -> None:
        if capacity < 16:
            raise ValueError(f"capacity must be >= 16, got {capacity}")
        if tick_stride < 1 or tick_stride & (tick_stride - 1):
            raise ValueError(
                f"tick_stride must be a power of two, got {tick_stride}"
            )
        self.capacity = int(capacity)
        self.tick_stride = int(tick_stride)
        self.ring: collections.deque = collections.deque(maxlen=capacity)
        self.seq = 0
        self.spill_path = spill_path
        self.spill_failed = False
        self._spill_fh = None
        self._spill_written = 0
        if spill_path is not None:
            self._open_spill(spill_path)

    # -- recording ---------------------------------------------------------------

    def record(self, kind: str, t_sim: float, /, **data) -> None:
        """Append one record (simulation-time stamped, monotonic seq).

        The first two parameters are positional-only so payloads may
        themselves carry ``kind=``/``t_sim=`` keys (fault records do).
        """
        self.seq += 1
        rec = {"seq": self.seq, "t": t_sim, "kind": kind}
        if data:
            rec.update(data)
        self.ring.append(rec)
        if self._spill_fh is not None:
            self._spill(rec)

    def tick(self, now: float, events_fired: int) -> None:
        """Periodic engine-progress sample (called at ``tick_stride``)."""
        self.record("tick", now, events=events_fired)

    # -- spill -------------------------------------------------------------------

    def _open_spill(self, path: str) -> None:
        try:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            fault_check("flight.spill", path)
            self._spill_fh = open(path, "w", encoding="utf-8")
        except OSError:
            self._spill_fh = None
            self.spill_failed = True

    def _spill(self, rec: dict) -> None:
        if self._spill_written >= MAX_SPILL_RECORDS:
            return
        try:
            line = json.dumps(rec, sort_keys=True)
            self._spill_fh.write(line + "\n")
            self._spill_written += 1
            if self._spill_written == MAX_SPILL_RECORDS:
                self._spill_fh.write(
                    json.dumps({"kind": "spill_truncated", "seq": self.seq})
                    + "\n"
                )
            self._spill_fh.flush()
        except OSError:
            # A full or broken disk must never take the simulation down:
            # drop the spill and keep recording in memory only.
            try:
                self._spill_fh.close()
            except OSError:
                pass
            self._spill_fh = None
            self.spill_failed = True

    # -- dump --------------------------------------------------------------------

    def dump(self, path: str, meta: Optional[dict] = None) -> str:
        """Atomically write the ring as a JSONL dump (header + records).

        Uses the repo-wide durable-write idiom: temp file in the target
        directory, fsync, atomic rename, directory fsync.  Readers never
        see a partial dump.  Returns *path*.
        """
        header = {"kind": "header", "flight": 1, "meta": dict(meta or {})}
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(rec, sort_keys=True) for rec in self.ring)
        payload = "\n".join(lines) + "\n"
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        fault_check("flight.dump", path, len(payload))
        fd, tmp = tempfile.mkstemp(
            dir=parent, prefix=".flight-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fsync_dir(parent)
        return path

    def close(self, remove_spill: bool = False) -> None:
        """Flush and close the spill file (idempotent).

        With ``remove_spill`` the spill file is deleted too — callers do
        this after a *successful* final dump, so a live spill on disk
        always means the replica never got to dump (killed mid-run).
        """
        if self._spill_fh is not None:
            try:
                self._spill_fh.flush()
                self._spill_fh.close()
            except OSError:
                pass
            self._spill_fh = None
        if remove_spill and self.spill_path is not None:
            try:
                os.unlink(self.spill_path)
            except OSError:
                pass


def load_flight_dump(path: str) -> tuple[dict, list[dict]]:
    """Read a dump or live spill, torn-tail-safe.

    Keeps whole lines only (a SIGKILL mid-write tears at most the final
    line) and skips anything that does not parse — the same discipline
    the WAL and span loaders use.  Returns ``(meta, records)``; *meta*
    is empty for spill files, which carry no header.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    good = len(raw)
    if raw and not raw.endswith(b"\n"):
        good = raw.rfind(b"\n") + 1
    meta: dict = {}
    records: list[dict] = []
    for line in raw[:good].decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(obj, dict):
            continue
        if obj.get("kind") == "header" and "flight" in obj:
            meta = dict(obj.get("meta") or {})
        else:
            records.append(obj)
    return meta, records


def load_flight_dir(directory: str) -> dict[int, dict]:
    """Scan *directory* for flight artifacts, one entry per seed.

    A final dump (``flight-<seed>.jsonl``) wins over the live spill
    (``flight-<seed>.live.jsonl``); a seed with only a spill was killed
    mid-run — its entry is marked ``"in_flight": True``.
    """
    out: dict[int, dict] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    spills: dict[int, str] = {}
    for name in names:
        if not name.startswith("flight-"):
            continue
        if name.endswith(".live.jsonl"):
            stem = name[len("flight-") : -len(".live.jsonl")]
            if stem.lstrip("-").isdigit():
                spills[int(stem)] = os.path.join(directory, name)
        elif name.endswith(".jsonl"):
            stem = name[len("flight-") : -len(".jsonl")]
            if stem.lstrip("-").isdigit():
                seed = int(stem)
                meta, records = load_flight_dump(
                    os.path.join(directory, name)
                )
                out[seed] = {
                    "seed": seed,
                    "meta": meta,
                    "records": records,
                    "in_flight": False,
                }
    for seed, path in spills.items():
        if seed in out:
            continue
        meta, records = load_flight_dump(path)
        out[seed] = {
            "seed": seed,
            "meta": meta,
            "records": records,
            "in_flight": True,
        }
    return out
