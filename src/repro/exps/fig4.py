"""Fig. 4: the four fault-assumption cases.

The paper simulates Case 1 (no faults, no FT) and — with this work's
extension — Case 3 (FT-aware models, no fault injection); Cases 2 and 4
(fault injection without/with fault tolerance) are its stated future
work, implemented here via :mod:`repro.core.fault_injection`.

The experiment runs the same LULESH design point under all four cases
with an (accelerated) node failure rate and reports totals, fault counts,
rollbacks and wasted time.  Expected shape: Case 2 (faults, no FT —
restart from scratch) is by far the worst; Case 4 pays checkpoint
overhead but bounds the damage; Case 3 is Case 1 plus pure checkpoint
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.fault_injection import FaultInjector, FaultModel
from repro.core.ft import NO_FT, scenario_l1
from repro.core.montecarlo import MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.apps.lulesh import lulesh_appbeo
from repro.exps.casestudy import CaseStudyContext, get_context


@dataclass
class CaseResult:
    """One Fig. 4 case's Monte-Carlo summary."""

    case: int
    label: str
    mean_total: float
    mean_faults: float
    mean_rollbacks: float
    mean_wasted: float


def fault_assumption_cases(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 200,
    ckpt_period: int = 40,
    node_mtbf_s: float = 40.0,
    recovery_time_s: float = 0.05,
    reps: int = 5,
) -> list[CaseResult]:
    """Run Cases 1-4 at one design point.

    ``node_mtbf_s`` defaults to an *accelerated* rate so that a ~1 s
    simulated job sees a few failures (Quartz-realistic MTBFs would need
    week-long jobs to show the effect; the dynamics are identical).
    """
    ctx = ctx or get_context()
    arch = ctx.archbeo
    # fault-injecting runs use the ArchBEO's FT hardware parameters
    arch.recovery_time_s = recovery_time_s
    nnodes = max(1, ranks // ctx.machine.ranks_per_node)
    # classic Case-4 semantics: every fault is recoverable from the last
    # checkpoint regardless of level (EXT5 studies the level-aware mix)
    model = FaultModel(node_mtbf_s=node_mtbf_s, software_fraction=1.0)

    cases = [
        (1, "no faults, no FT", NO_FT, False),
        (2, "faults, no FT", NO_FT, True),
        (3, "no faults, FT-aware", scenario_l1(ckpt_period), False),
        (4, "faults + FT", scenario_l1(ckpt_period), True),
    ]
    out: list[CaseResult] = []
    for num, label, scenario, inject in cases:
        app = lulesh_appbeo(timesteps=timesteps, scenario=scenario)

        def factory(seed: int, _app=app, _inject=inject) -> BESSTSimulator:
            fi = (
                FaultInjector(model, nnodes=nnodes, seed=seed + 777)
                if _inject
                else None
            )
            return BESSTSimulator(
                _app,
                arch,
                nranks=ranks,
                params={"epr": epr},
                seed=seed,
                fault_injector=fi,
            )

        mc = MonteCarloRunner(reps=reps, base_seed=100).run(
            factory, max_events=20_000_000
        )
        out.append(
            CaseResult(
                case=num,
                label=label,
                mean_total=mc.total_time.mean,
                mean_faults=float(np.mean([r.faults_injected for r in mc.results])),
                mean_rollbacks=mc.mean_rollbacks,
                mean_wasted=float(np.mean([r.wasted_time for r in mc.results])),
            )
        )
    return out


def format_fig4(results: list[CaseResult]) -> str:
    lines = [
        "Fig. 4 — fault assumption cases (BE-SST DSE)",
        f"{'case':<6s}{'assumptions':<22s}{'total':>10s}{'faults':>8s}"
        f"{'rollbacks':>11s}{'wasted':>9s}",
    ]
    for r in results:
        lines.append(
            f"{r.case:<6d}{r.label:<22s}{r.mean_total:>9.3f}s{r.mean_faults:>8.1f}"
            f"{r.mean_rollbacks:>11.1f}{r.mean_wasted:>8.3f}s"
        )
    return "\n".join(lines)
