"""Ablation experiments (beyond the paper's figures).

* ABL1 — modeling method: interpolation LUT vs symbolic regression on
  the same calibration data (the paper implements both; the case study
  uses symbolic regression).
* ABL2 — checkpoint period: simulated runtime under fault injection
  across periods vs the Young/Daly analytical optimum.
* ABL3 — analytical baselines: reliability-aware Amdahl/Gustafson and
  replication speedup curves, locating the optimal process count.
* ABL4 — DES engines: sequential vs conservative-parallel equivalence
  and event-rate comparison on a message-passing workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analytical import (
    daly_interval,
    replication_speedup,
    reliability_aware_amdahl,
    reliability_aware_gustafson,
)
from repro.core.fault_injection import FaultInjector, FaultModel
from repro.core.ft import scenario_l1
from repro.core.montecarlo import MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.models.calibration import CalibrationPipeline, dataset_mape
from repro.apps.lulesh import lulesh_appbeo
from repro.exps.casestudy import CaseStudyContext, get_context


# -- ABL1: interpolation vs symbolic regression -------------------------------------


def modeling_method_ablation(
    ctx: Optional[CaseStudyContext] = None, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Kernel -> {method: full-grid MAPE} for both modeling methods."""
    ctx = ctx or get_context()
    out: dict[str, dict[str, float]] = {}
    lut_pipe = CalibrationPipeline(method="lut", seed=seed)
    for kernel, ds in ctx.dev.datasets.items():
        lut_fit = lut_pipe.fit_kernel(ds)
        out[kernel] = {
            "symreg": dataset_mape(ctx.dev.fitted[kernel].model, ds),
            "lut": dataset_mape(lut_fit.model, ds),
        }
    return out


def format_abl1(table: dict[str, dict[str, float]]) -> str:
    lines = [
        "ABL1 — modeling method (full-grid MAPE)",
        f"{'kernel':<20s}{'symreg':>10s}{'lut':>10s}",
    ]
    for kernel, row in table.items():
        lines.append(f"{kernel:<20s}{row['symreg']:>9.2f}%{row['lut']:>9.2f}%")
    return "\n".join(lines)


# -- ABL2: checkpoint period vs Young/Daly ---------------------------------------------


@dataclass
class PeriodPoint:
    period: int
    mean_total: float
    mean_rollbacks: float


@dataclass
class YoungDalyAblation:
    points: list[PeriodPoint]
    best_period: int
    daly_period_timesteps: float
    ckpt_cost: float
    timestep_cost: float
    system_mtbf: float


def youngdaly_ablation(
    ctx: Optional[CaseStudyContext] = None,
    periods: Sequence[int] = (5, 10, 20, 40, 80, 160),
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 400,
    node_mtbf_s: float = 30.0,
    reps: int = 5,
) -> YoungDalyAblation:
    """Sweep the checkpoint period under fault injection; compare the
    simulated optimum with Daly's analytic interval."""
    ctx = ctx or get_context()
    arch = ctx.archbeo
    arch.recovery_time_s = 0.02
    nnodes = max(1, ranks // ctx.machine.ranks_per_node)
    model = FaultModel(node_mtbf_s=node_mtbf_s, software_fraction=1.0)

    points: list[PeriodPoint] = []
    for period in periods:
        app = lulesh_appbeo(timesteps=timesteps, scenario=scenario_l1(period))

        def factory(seed, _app=app):
            return BESSTSimulator(
                _app,
                arch,
                nranks=ranks,
                params={"epr": epr},
                seed=seed,
                fault_injector=FaultInjector(model, nnodes=nnodes, seed=seed + 5),
                record_timelines="none",
            )

        mc = MonteCarloRunner(reps=reps, base_seed=7).run(
            factory, max_events=50_000_000
        )
        points.append(
            PeriodPoint(
                period=period,
                mean_total=mc.total_time.mean,
                mean_rollbacks=mc.mean_rollbacks,
            )
        )

    ckpt_cost = arch.predict("fti_l1", {"epr": epr, "ranks": ranks})
    step_cost = arch.predict("lulesh_timestep", {"epr": epr, "ranks": ranks})
    mtbf = model.system_mtbf(nnodes)
    daly_ts = daly_interval(ckpt_cost, mtbf) / step_cost
    best = min(points, key=lambda p: p.mean_total).period
    return YoungDalyAblation(
        points=points,
        best_period=best,
        daly_period_timesteps=daly_ts,
        ckpt_cost=ckpt_cost,
        timestep_cost=step_cost,
        system_mtbf=mtbf,
    )


def format_abl2(res: YoungDalyAblation) -> str:
    lines = [
        "ABL2 — checkpoint period under fault injection vs Young/Daly",
        f"  L1 cost {res.ckpt_cost * 1e3:.1f}ms, timestep "
        f"{res.timestep_cost * 1e3:.2f}ms, system MTBF {res.system_mtbf:.2f}s",
        f"{'period (ts)':>12s}{'mean total':>12s}{'rollbacks':>11s}",
    ]
    for p in res.points:
        marker = "  <- simulated optimum" if p.period == res.best_period else ""
        lines.append(
            f"{p.period:>12d}{p.mean_total:>11.3f}s{p.mean_rollbacks:>11.1f}{marker}"
        )
    lines.append(
        f"Daly analytic optimum ~= {res.daly_period_timesteps:.0f} timesteps"
    )
    return "\n".join(lines)


# -- ABL3: analytical baselines -------------------------------------------------------------


def analytical_baselines(
    serial_fraction: float = 0.001,
    node_mtbf: float = 5.0 * 365 * 86400 / 1000,  # node MTBF such that 1k nodes ~ 43h
    ckpt_cost: float = 60.0,
    counts: Sequence[int] = (1, 8, 64, 512, 4096, 32768, 262144),
) -> list[dict]:
    """Speedup curves: fault-free vs faults+C/R vs replication."""
    rows = []
    for n in counts:
        row = {
            "n": n,
            "amdahl": reliability_aware_amdahl(
                n, serial_fraction, node_mtbf=1e30, ckpt_cost=ckpt_cost
            ),
            "amdahl_ft": reliability_aware_amdahl(
                n, serial_fraction, node_mtbf=node_mtbf, ckpt_cost=ckpt_cost
            ),
            "gustafson_ft": reliability_aware_gustafson(
                n, serial_fraction, node_mtbf=node_mtbf, ckpt_cost=ckpt_cost
            ),
            "replication": (
                replication_speedup(
                    n, serial_fraction, node_mtbf=node_mtbf, ckpt_cost=ckpt_cost
                )
                if n >= 2
                else 1.0
            ),
        }
        rows.append(row)
    return rows


def format_abl3(rows: list[dict]) -> str:
    lines = [
        "ABL3 — analytical reliability-aware speedup baselines",
        f"{'n':>8s}{'Amdahl (no faults)':>20s}{'Amdahl+C/R':>14s}"
        f"{'Gustafson+C/R':>15s}{'replication':>13s}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>8d}{r['amdahl']:>20.1f}{r['amdahl_ft']:>14.1f}"
            f"{r['gustafson_ft']:>15.1f}{r['replication']:>13.1f}"
        )
    return "\n".join(lines)


# -- ABL4: engine equivalence ------------------------------------------------------------------


def engine_ablation(n_ring: int = 16, laps: int = 200) -> dict:
    """Sequential vs parallel engine on a token-ring workload."""
    from repro.des import Component, Engine, ParallelEngine
    from repro.des.link import connect

    class RingNode(Component):
        """Passes a token around the ring `laps` times, recording visits."""

        def __init__(self, name, laps):
            super().__init__(name)
            self.laps = laps
            self.visits = []

        def start(self):
            self.send("next", {"lap": 0})

        def handle_event(self, port_name, payload, time):
            self.visits.append(round(time, 12))
            lap = payload["lap"]
            if port_name == "prev":
                if self.name.endswith("_0"):
                    lap += 1
                if lap < self.laps:
                    self.send("next", {"lap": lap})

    def build(engine):
        nodes = [engine.register(RingNode(f"n_{i}", laps)) for i in range(n_ring)]
        for i in range(n_ring):
            connect(nodes[i], "next", nodes[(i + 1) % n_ring], "prev", latency=0.5)
        engine.schedule(0.0, lambda ev: nodes[0].start())
        return nodes

    out = {}
    t0 = time.perf_counter()
    seq = Engine(seed=1)
    seq_nodes = build(seq)
    seq.run()
    out["sequential"] = {
        "wall": time.perf_counter() - t0,
        "events": seq.events_fired,
    }
    for nparts in (2, 4):
        t0 = time.perf_counter()
        par = ParallelEngine(nparts=nparts, seed=1)
        par_nodes = build(par)
        par.run()
        identical = all(
            a.visits == b.visits for a, b in zip(seq_nodes, par_nodes)
        )
        out[f"parallel_{nparts}"] = {
            "wall": time.perf_counter() - t0,
            "events": par.events_fired,
            "windows": par.windows_executed,
            "identical": identical,
        }
    return out


def format_abl4(res: dict) -> str:
    lines = ["ABL4 — sequential vs conservative-parallel DES engine"]
    for name, row in res.items():
        extra = ""
        if "identical" in row:
            extra = f" windows={row['windows']} identical={row['identical']}"
        lines.append(
            f"  {name:<14s} wall={row['wall'] * 1e3:8.1f}ms events={row['events']}{extra}"
        )
    return "\n".join(lines)
