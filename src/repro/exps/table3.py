"""Table III: instance-model validation via MAPE.

Paper values: LULESH timestep 6.64%, Level-1 checkpointing 16.68%,
Level-2 checkpointing 14.50%.  Validation compares model predictions
against *fresh* measured means (independent samples, not the calibration
campaign), over the 25 Table II parameter combinations.
"""

from __future__ import annotations

from typing import Optional

from repro.core.validation import ValidationReport
from repro.exps.casestudy import CASE_KERNELS, CaseStudyContext, get_context
from repro.exps.fig5_6 import instance_scaling

#: the paper's Table III, for side-by-side reporting
PAPER_TABLE3 = {
    "lulesh_timestep": 6.64,
    "fti_l1": 16.68,
    "fti_l2": 14.50,
}


def instance_model_mape(
    ctx: Optional[CaseStudyContext] = None,
    validation_samples: int = 5,
) -> dict[str, ValidationReport]:
    """Per-kernel validation reports over the Table II grid."""
    ctx = ctx or get_context()
    rows = instance_scaling(ctx, validation_samples=validation_samples)
    reports: dict[str, ValidationReport] = {}
    for kernel in CASE_KERNELS:
        rep = ValidationReport(kernel)
        for r in rows:
            if r.kernel == kernel and r.measured is not None:
                rep.add(
                    {"epr": r.epr, "ranks": r.ranks}, r.measured, r.predicted
                )
        reports[kernel] = rep
    return reports


def format_table3(reports: dict[str, ValidationReport]) -> str:
    """Table III side by side with the paper's values."""
    lines = [
        "Table III — model validation via MAPE",
        f"{'Kernel':<24s}{'reproduced':>12s}{'paper':>10s}",
    ]
    for kernel, rep in reports.items():
        paper = PAPER_TABLE3.get(kernel)
        paper_s = f"{paper:.2f}%" if paper is not None else "n/a"
        lines.append(f"{kernel:<24s}{rep.mape:>11.2f}%{paper_s:>10s}")
    return "\n".join(lines)
