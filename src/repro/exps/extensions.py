"""Extension experiments: the paper's stated future directions, working.

* EXT1 — **all four FTI levels** in the full-system simulation (the case
  study stopped at L1/L2 pending communication models; our fat-tree comm
  model and L3/L4 kernels let the DSE cover the whole of Table I).
* EXT2 — **checkpoint-level selection**: expected-waste ranking of the
  levels as the system failure rate grows (the Table I discussion's
  "what level of fault-tolerance is necessary to optimize performance"),
  cross-checked against fault-injecting simulation.
* EXT3 — **architectural DSE**: the same application and FT scenario on
  Quartz's fat tree vs a notional dragonfly with identical node count
  (the Co-Design phase's "plug-and-play" architecture swap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analytical.levelselect import (
    LevelChoice,
    quartz_level_profiles,
    select_level,
)
from repro.core.beo import ArchBEO
from repro.core.ft import scenario_levels
from repro.core.montecarlo import MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.core.workflow import ModelDevelopment, build_archbeo
from repro.apps.lulesh import lulesh_appbeo
from repro.exps.casestudy import CKPT_PERIOD, CaseStudyContext, get_context
from repro.network.commmodel import CollectiveCostModel, LogGPModel
from repro.network.dragonfly import Dragonfly

#: kernels including the levels the case study deferred
ALL_LEVEL_KERNELS = ("lulesh_timestep", "fti_l1", "fti_l2", "fti_l3", "fti_l4")

_ALL_LEVELS_CTX: dict = {}


def get_all_levels_context(seed: int = 0) -> CaseStudyContext:
    """A case-study context whose models cover all four FTI levels."""
    ctx = _ALL_LEVELS_CTX.get(seed)
    if ctx is not None:
        return ctx
    machine = get_context(seed=seed).machine
    dev = ModelDevelopment(machine, ALL_LEVEL_KERNELS, seed=seed).run()
    archbeo = build_archbeo(machine, dev.models())
    ctx = CaseStudyContext(machine=machine, dev=dev, archbeo=archbeo, seed=seed)
    _ALL_LEVELS_CTX[seed] = ctx
    return ctx


# -- EXT1: all four levels in full-system simulation -----------------------------------


@dataclass
class LevelRunRow:
    level: int
    ckpt_instance_cost: float      #: modeled per-instance cost
    simulated_total: float
    measured_total: float

    @property
    def percent_error(self) -> float:
        return 100.0 * abs(self.simulated_total - self.measured_total) / self.measured_total


def all_levels_full_system(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 200,
    period: int = CKPT_PERIOD,
    reps: int = 3,
) -> list[LevelRunRow]:
    """Full-system totals for single-level scenarios L1..L4."""
    ctx = ctx or get_all_levels_context()
    rows = []
    for level in (1, 2, 3, 4):
        scenario = scenario_levels([level], period=period)
        mc = ctx.simulate(epr, ranks, scenario, timesteps=timesteps, reps=reps)
        measured = ctx.measure_mean_total(
            epr, ranks, scenario, timesteps=timesteps, reps=2
        )
        rows.append(
            LevelRunRow(
                level=level,
                ckpt_instance_cost=ctx.archbeo.predict(
                    f"fti_l{level}", {"epr": epr, "ranks": ranks}
                ),
                simulated_total=mc.total_time.mean,
                measured_total=measured,
            )
        )
    return rows


def format_ext1(rows: list[LevelRunRow]) -> str:
    lines = [
        "EXT1 — all four FTI levels, full-system simulation",
        f"{'level':>6s}{'instance':>12s}{'simulated':>12s}{'measured':>12s}{'err %':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.level:>6d}{r.ckpt_instance_cost * 1e3:>10.1f}ms"
            f"{r.simulated_total:>11.3f}s{r.measured_total:>11.3f}s"
            f"{r.percent_error:>7.1f}%"
        )
    return "\n".join(lines)


# -- EXT2: level selection vs failure rate ------------------------------------------------


@dataclass
class LevelSelectionRow:
    system_mtbf: float
    ranking: list[LevelChoice]

    @property
    def best_level(self) -> int:
        return self.ranking[0].profile.level


def level_selection_sweep(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 10,
    mtbfs: Sequence[float] = (36000.0, 3600.0, 600.0, 120.0, 30.0),
    fallback_penalty: float = 1800.0,
) -> list[LevelSelectionRow]:
    """Rank the four levels analytically across system MTBFs.

    Per-level instance costs come from the fitted models, so this is the
    analytic companion of the simulator's FT-level DSE.
    """
    ctx = ctx or get_all_levels_context()
    costs = {
        level: ctx.archbeo.predict(f"fti_l{level}", {"epr": epr, "ranks": ranks})
        for level in (1, 2, 3, 4)
    }
    profiles = quartz_level_profiles(costs)
    return [
        LevelSelectionRow(m, select_level(profiles, m, fallback_penalty))
        for m in mtbfs
    ]


def format_ext2(rows: list[LevelSelectionRow]) -> str:
    lines = [
        "EXT2 — checkpoint-level selection vs system MTBF",
        f"{'MTBF':>10s}{'best':>6s}   waste by level (L1..L4)",
    ]
    for r in rows:
        waste = {c.profile.level: c.waste for c in r.ranking}
        ws = "  ".join(f"L{l}={waste[l]:.3f}" for l in (1, 2, 3, 4))
        lines.append(f"{r.system_mtbf:>9.0f}s{r.best_level:>6d}   {ws}")
    return "\n".join(lines)


# -- EXT3: architectural DSE (fat tree vs dragonfly) --------------------------------------


@dataclass
class ArchDSERow:
    architecture: str
    scenario: str
    total: float


def _dragonfly_archbeo(base: ArchBEO, nnodes: int) -> ArchBEO:
    """The notional machine: same nodes and kernel models, dragonfly
    fabric with faster links but a tapered global stage."""
    topo = Dragonfly(nnodes, nodes_per_router=8, routers_per_group=8)
    comm = CollectiveCostModel(
        LogGPModel(
            topo,
            latency_per_hop=60e-9,       # shorter cables within groups
            overhead=300e-9,
            bytes_per_second=25e9,       # next-gen links
        )
    )
    return ArchBEO(
        name="quartz-dragonfly",
        models=dict(base.models),
        topology=topo,
        comm=comm,
        cores_per_node=base.cores_per_node,
    )


def architectural_dse(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 200,
    period: int = CKPT_PERIOD,
    reps: int = 3,
) -> list[ArchDSERow]:
    """Swap the interconnect under the same app + FT scenarios."""
    ctx = ctx or get_all_levels_context()
    nnodes = max(ranks // ctx.machine.ranks_per_node, 1)
    architectures = {
        "fat-tree": ctx.archbeo,
        "dragonfly": _dragonfly_archbeo(ctx.archbeo, nnodes),
    }
    rows = []
    for arch_name, arch in architectures.items():
        for levels in ([], [1], [1, 2]):
            scenario = scenario_levels(levels, period=period)
            app = lulesh_appbeo(timesteps=timesteps, scenario=scenario)

            def factory(seed, _app=app, _arch=arch):
                return BESSTSimulator(
                    _app,
                    _arch,
                    nranks=ranks,
                    params={"epr": epr},
                    seed=seed,
                    record_timelines="none",
                )

            mc = MonteCarloRunner(reps=reps, base_seed=11).run(factory)
            rows.append(
                ArchDSERow(
                    architecture=arch_name,
                    scenario=scenario.name,
                    total=mc.total_time.mean,
                )
            )
    return rows


def format_ext3(rows: list[ArchDSERow]) -> str:
    lines = [
        "EXT3 — architectural DSE: fat tree vs notional dragonfly",
        f"{'architecture':<14s}{'scenario':<10s}{'total':>10s}",
    ]
    for r in rows:
        lines.append(f"{r.architecture:<14s}{r.scenario:<10s}{r.total:>9.3f}s")
    return "\n".join(lines)


# -- EXT4: hardware-parameter DSE (notional NVRAM upgrade) --------------------------------


@dataclass
class HardwareDSERow:
    machine: str
    scenario: str
    total: float
    ckpt_time: float


def hardware_upgrade_dse(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 25,
    timesteps: int = 200,
    period: int = CKPT_PERIOD,
    nvram_speedup: float = 4.0,
    reps: int = 3,
) -> list[HardwareDSERow]:
    """Swap checkpoint-storage hardware under the same app (Fig. 2 "C").

    A notional Quartz with NVRAM-class node-local storage checkpoints
    ``nvram_speedup``x faster: the validated L1/L2 models are scaled by
    ``1/nvram_speedup`` (partner copies still cross the same fabric, so
    L2 only scales its storage share; we conservatively scale the whole
    kernel and call it an upper bound on the benefit).
    """
    from repro.models.base import ScaledModel

    ctx = ctx or get_all_levels_context()
    base = ctx.archbeo
    upgraded = ArchBEO(
        name=f"{base.name}-nvram",
        models=dict(base.models),
        topology=base.topology,
        comm=base.comm,
        cores_per_node=base.cores_per_node,
    )
    for kernel in ("fti_l1", "fti_l2"):
        upgraded.models[kernel] = ScaledModel(
            base.models[kernel], 1.0 / nvram_speedup
        )

    rows: list[HardwareDSERow] = []
    for name, arch in (("quartz", base), ("quartz+nvram", upgraded)):
        for levels in ([], [1], [1, 2]):
            scenario = scenario_levels(levels, period=period)
            app = lulesh_appbeo(timesteps=timesteps, scenario=scenario)

            def factory(seed, _app=app, _arch=arch):
                return BESSTSimulator(
                    _app,
                    _arch,
                    nranks=ranks,
                    params={"epr": epr},
                    seed=seed,
                )

            mc = MonteCarloRunner(reps=reps, base_seed=23).run(factory)
            rows.append(
                HardwareDSERow(
                    machine=name,
                    scenario=scenario.name,
                    total=mc.total_time.mean,
                    ckpt_time=float(
                        np.mean([r.checkpoint_time for r in mc.results])
                    ),
                )
            )
    return rows


def format_ext4(rows: list[HardwareDSERow]) -> str:
    lines = [
        "EXT4 — hardware-parameter DSE: NVRAM checkpoint storage",
        f"{'machine':<15s}{'scenario':<10s}{'total':>10s}{'ckpt time':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r.machine:<15s}{r.scenario:<10s}{r.total:>9.3f}s{r.ckpt_time:>10.3f}s"
        )
    return "\n".join(lines)


# -- EXT5: simulated checkpoint-level DSE under mixed faults --------------------------------


@dataclass
class LevelFaultRow:
    level: int
    mean_total: float
    mean_rollbacks: float
    mean_wasted: float
    scratch_restarts: float    #: mean rollbacks that fell back to t=0


def level_fault_dse(
    ctx: Optional[CaseStudyContext] = None,
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 200,
    period: int = 20,
    node_mtbf_s: float = 8.0,
    software_fraction: float = 0.6,
    recovery_time_s: float = 0.02,
    reps: int = 6,
) -> list[LevelFaultRow]:
    """Simulate each single-level scenario under a mixed fault load.

    Faults are ``software_fraction`` software crashes (any level recovers)
    and the rest node losses (L1 checkpoints cannot recover them — the
    job restarts from scratch).  The expected outcome is EXT2's analytic
    story, now emerging from simulation: cheap L1 pays catastrophic
    restarts on node faults, expensive high levels pay steady overhead,
    and the optimum sits where the fault mix and checkpoint costs balance.
    """
    from repro.core.fault_injection import FaultInjector, FaultModel

    ctx = ctx or get_all_levels_context()
    arch = ctx.archbeo
    arch.recovery_time_s = recovery_time_s
    nnodes = max(1, ranks // ctx.machine.ranks_per_node)
    model = FaultModel(
        node_mtbf_s=node_mtbf_s, software_fraction=software_fraction
    )

    rows: list[LevelFaultRow] = []
    for level in (1, 2, 3, 4):
        scenario = scenario_levels([level], period=period)
        app = lulesh_appbeo(timesteps=timesteps, scenario=scenario)

        results = []
        scratch = 0
        for rep in range(reps):
            fi = FaultInjector(model, nnodes=nnodes, seed=1000 + rep)
            sim = BESSTSimulator(
                app,
                arch,
                nranks=ranks,
                params={"epr": epr},
                seed=rep,
                fault_injector=fi,
                record_timelines="none",
            )
            res = sim.run(max_events=50_000_000)
            results.append(res)
            if level == 1:
                scratch += fi.log.count_kind("node")
        rows.append(
            LevelFaultRow(
                level=level,
                mean_total=float(np.mean([r.total_time for r in results])),
                mean_rollbacks=float(np.mean([r.rollbacks for r in results])),
                mean_wasted=float(np.mean([r.wasted_time for r in results])),
                scratch_restarts=scratch / reps if level == 1 else 0.0,
            )
        )
    return rows


def format_ext5(rows: list[LevelFaultRow]) -> str:
    lines = [
        "EXT5 — simulated level DSE under mixed faults "
        "(software + node losses)",
        f"{'level':>6s}{'mean total':>12s}{'rollbacks':>11s}{'wasted':>9s}"
        f"{'scratch/run':>13s}",
    ]
    best = min(rows, key=lambda r: r.mean_total).level
    for r in rows:
        marker = "  <- simulated optimum" if r.level == best else ""
        lines.append(
            f"{r.level:>6d}{r.mean_total:>11.3f}s{r.mean_rollbacks:>11.1f}"
            f"{r.mean_wasted:>8.3f}s{r.scratch_restarts:>13.1f}{marker}"
        )
    return "\n".join(lines)


# -- EXT6: ABFT vs checkpoint-restart for silent data corruption ----------------------------


@dataclass
class ABFTRow:
    n: int                     #: protected matmul dimension
    abft_overhead_pct: float
    p_bad_plain: float         #: silently-wrong probability, plain or C/R
    p_bad_abft: float


def abft_vs_checkpointing(
    sizes: Sequence[int] = (64, 256, 1024, 4096),
    sdc_rate_per_hour: float = 0.02,
    job_hours: float = 24.0,
    abft_coverage: float = 0.95,
) -> list[ABFTRow]:
    """Algorithmic DSE: checksum ABFT against C/R for SDC exposure.

    Checkpoint-restart is blind to silent data corruption (it checkpoints
    the corrupted state), so its silently-wrong probability equals the
    plain run's; ABFT pays an arithmetic overhead that shrinks with
    problem size while slashing that probability.
    """
    from repro.abft import abft_overhead_ratio, sdc_outcome_probabilities

    probs = sdc_outcome_probabilities(sdc_rate_per_hour, job_hours, abft_coverage)
    return [
        ABFTRow(
            n=n,
            abft_overhead_pct=100.0 * abft_overhead_ratio(n),
            p_bad_plain=probs["p_bad_plain"],
            p_bad_abft=probs["p_bad_abft"],
        )
        for n in sizes
    ]


def format_ext6(rows: list[ABFTRow]) -> str:
    lines = [
        "EXT6 — ABFT vs checkpoint-restart under silent data corruption",
        f"{'n':>8s}{'ABFT overhead':>15s}{'P(bad) plain/CR':>17s}{'P(bad) ABFT':>13s}",
    ]
    for r in rows:
        lines.append(
            f"{r.n:>8d}{r.abft_overhead_pct:>14.2f}%{r.p_bad_plain:>17.3f}"
            f"{r.p_bad_abft:>13.3f}"
        )
    return "\n".join(lines)


# -- EXT7: modeling-granularity ablation ------------------------------------------------------


@dataclass
class GranularityRow:
    granularity: str
    kernels: int
    simulated_total: float
    measured_total: float
    fit_seconds: float

    @property
    def percent_error(self) -> float:
        return 100.0 * abs(self.simulated_total - self.measured_total) / self.measured_total


def granularity_ablation(
    ranks: int = 64,
    epr: int = 10,
    timesteps: int = 200,
    reps: int = 3,
    seed: int = 0,
) -> list[GranularityRow]:
    """Coarse (one timestep kernel) vs fine (force + EOS subkernels).

    BE-SST "can use models at various levels of granularity to more
    finely balance speed and accuracy": the fine decomposition doubles
    the modeling work for (typically) a small accuracy change at the
    system level.
    """
    import time as _time

    from repro.core.ft import NO_FT
    from repro.core.instructions import Collective, Compute, Exchange
    from repro.core.beo import AppBEO
    from repro.apps.lulesh import lulesh_halo_bytes, validate_cube_ranks
    from repro.testbed.machine import measure_application_run
    from repro.testbed.quartz import make_quartz

    machine = make_quartz()

    def fine_builder(rank, nranks, params):
        e = int(params["epr"])
        body = []
        for _ in range(timesteps):
            body.append(Compute.of("lulesh_force", epr=e, ranks=nranks))
            body.append(Compute.of("lulesh_eos", epr=e, ranks=nranks))
            body.append(Exchange(nbytes=lulesh_halo_bytes(e), neighbors=6))
            body.append(Collective("allreduce", nbytes=8))
        return body

    def coarse_builder(rank, nranks, params):
        e = int(params["epr"])
        body = []
        for _ in range(timesteps):
            body.append(Compute.of("lulesh_timestep", epr=e, ranks=nranks))
            body.append(Exchange(nbytes=lulesh_halo_bytes(e), neighbors=6))
            body.append(Collective("allreduce", nbytes=8))
        return body

    variants = [
        ("coarse", ["lulesh_timestep"], coarse_builder),
        ("fine", ["lulesh_force", "lulesh_eos"], fine_builder),
    ]
    measured = float(
        np.mean(
            [
                measure_application_run(
                    machine, ranks, timesteps, NO_FT, {"epr": epr},
                    seed=seed + 300 + i,
                ).total_time
                for i in range(2)
            ]
        )
    )
    rows: list[GranularityRow] = []
    for name, kernels, builder in variants:
        t0 = _time.perf_counter()
        dev = ModelDevelopment(machine, kernels, seed=seed).run()
        fit_seconds = _time.perf_counter() - t0
        arch = build_archbeo(machine, dev.models())
        app = AppBEO(
            f"lulesh_{name}", builder, default_params={"epr": epr},
            validate_ranks=validate_cube_ranks,
        )

        def factory(s, _app=app, _arch=arch):
            return BESSTSimulator(
                _app, _arch, nranks=ranks, params={"epr": epr}, seed=s,
                record_timelines="none",
            )

        mc = MonteCarloRunner(reps=reps, base_seed=41).run(factory)
        rows.append(
            GranularityRow(
                granularity=name,
                kernels=len(kernels),
                simulated_total=mc.total_time.mean,
                measured_total=measured,
                fit_seconds=fit_seconds,
            )
        )
    return rows


def format_ext7(rows: list[GranularityRow]) -> str:
    lines = [
        "EXT7 — modeling granularity: coarse timestep vs fine subkernels",
        f"{'granularity':<13s}{'kernels':>8s}{'simulated':>11s}{'measured':>11s}"
        f"{'err %':>8s}{'fit time':>10s}",
    ]
    for r in rows:
        lines.append(
            f"{r.granularity:<13s}{r.kernels:>8d}{r.simulated_total:>10.3f}s"
            f"{r.measured_total:>10.3f}s{r.percent_error:>7.1f}%"
            f"{r.fit_seconds:>9.1f}s"
        )
    return "\n".join(lines)


# -- EXT8: SDC verification-interval DSE under a mixed fault taxonomy ----------


#: fault mix exercising the whole taxonomy, weighted toward SDC so the
#: verification cadence is the binding design choice
EXT8_FAULT_MIX = (
    ("burst", 0.05),
    ("node", 0.10),
    ("sdc", 0.40),
    ("software", 0.35),
    ("straggler", 0.10),
)


@dataclass
class SDCVerifyRow:
    verify_period: int          #: timesteps between ABFT verifications (0: off)
    mean_total: float
    mean_wasted: float
    mean_verify: float          #: mean time spent in verification kernels
    sdc_detected: float         #: mean detected strikes per run
    sdc_undetected: float       #: mean strikes still latent at completion
    wrong_result_rate: float    #: fraction of runs completing with bad output


def sdc_verification_dse(
    verify_periods: Sequence[int] = (0, 2, 5, 10, 20),
    node_mtbf_s: float = 6.0,
    ckpt_period: int = 10,
    timesteps: int = 80,
    reps: int = 8,
    seed: int = 0,
) -> list[SDCVerifyRow]:
    """Sweep the ABFT verification cadence under a mixed fault taxonomy.

    The trade the sweep exposes: verifying every couple of timesteps pays
    steady kernel overhead but catches silent corruption early (short
    detection latency, shallow rollbacks, few wrong results); verifying
    rarely or never is cheap per run but lets strikes survive to
    completion, turning finished runs into wrong answers.  The simulated
    sweet spot is cross-checked against the closed-form two-error-type
    optimum of :func:`repro.analytical.youngdaly.two_error_interval`
    (see :func:`ext8_analytic_period`).
    """
    from repro.core.campaign import CampaignSpec, build_campaign_simulator
    from repro.core.fault_injection import RecoveryPolicy
    from repro.core.montecarlo import derive_seeds

    policy = RecoveryPolicy()
    seeds = derive_seeds(seed, reps)
    rows: list[SDCVerifyRow] = []
    for vp in verify_periods:
        spec = CampaignSpec(
            node_mtbf_s=node_mtbf_s,
            ckpt_period=ckpt_period,
            timesteps=timesteps,
            fault_mix=EXT8_FAULT_MIX,
            verify_period=vp,
        )
        results = []
        for s in seeds:
            sim = build_campaign_simulator(spec, int(s), policy)
            results.append(sim.run(max_events=50_000_000))
        rows.append(
            SDCVerifyRow(
                verify_period=vp,
                mean_total=float(np.mean([r.total_time for r in results])),
                mean_wasted=float(np.mean([r.wasted_time for r in results])),
                mean_verify=float(np.mean([r.verify_time for r in results])),
                sdc_detected=float(np.mean([r.sdc_detected for r in results])),
                sdc_undetected=float(
                    np.mean([r.sdc_undetected for r in results])
                ),
                wrong_result_rate=float(
                    np.mean([1.0 if r.wrong_result else 0.0 for r in results])
                ),
            )
        )
    return rows


def ext8_analytic_period(
    node_mtbf_s: float = 6.0,
    compute_s: float = 0.1,
    ckpt_cost_s: float = 0.05,
    verify_cost_s: float = 0.01,
) -> float:
    """The two-error-type optimal cadence, in timesteps.

    The injector draws one fault per exponential arrival and then picks
    its kind from :data:`EXT8_FAULT_MIX`, so each kind's MTBF is the
    overall MTBF divided by that kind's weight.  Fail-stop pools every
    kind that interrupts execution (everything but SDC).
    """
    from repro.analytical.youngdaly import two_error_interval

    mix = dict(EXT8_FAULT_MIX)
    sdc_w = mix.get("sdc", 0.0)
    failstop_w = sum(w for k, w in mix.items() if k != "sdc")
    mtbf_sdc = node_mtbf_s / sdc_w if sdc_w > 0 else float("inf")
    mtbf_failstop = (
        node_mtbf_s / failstop_w if failstop_w > 0 else float("inf")
    )
    tau = two_error_interval(ckpt_cost_s, verify_cost_s, mtbf_failstop, mtbf_sdc)
    return tau / compute_s


def format_ext8(rows: list[SDCVerifyRow]) -> str:
    lines = [
        "EXT8 — SDC verification-interval DSE (mixed fault taxonomy: "
        + ", ".join(f"{k}={w:g}" for k, w in EXT8_FAULT_MIX)
        + ")",
        f"{'verify/ts':>10s}{'mean total':>12s}{'wasted':>9s}{'verify':>9s}"
        f"{'detect':>8s}{'latent':>8s}{'wrong %':>9s}",
    ]
    # "best" balances speed against correctness: fastest run among the
    # cadences that produced no wrong results, else lowest wrong rate
    clean = [r for r in rows if r.wrong_result_rate == 0.0]
    pool = clean or sorted(rows, key=lambda r: r.wrong_result_rate)[:1]
    best = min(pool, key=lambda r: r.mean_total).verify_period
    for r in rows:
        cadence = "off" if r.verify_period == 0 else str(r.verify_period)
        marker = "  <- simulated optimum" if r.verify_period == best else ""
        lines.append(
            f"{cadence:>10s}{r.mean_total:>11.3f}s{r.mean_wasted:>8.3f}s"
            f"{r.mean_verify:>8.3f}s{r.sdc_detected:>8.1f}"
            f"{r.sdc_undetected:>8.1f}{100 * r.wrong_result_rate:>8.1f}%"
            f"{marker}"
        )
    lines.append(
        "analytic two-error-type optimum: "
        f"{ext8_analytic_period():.1f} timesteps between verifications"
    )
    return "\n".join(lines)


#: EXT9 network fault mix: hard link failures and degraded/lossy links in
#: equal measure (switch deaths excluded — on the small study torus a
#: dead switch partitions its ranks and the run measures stall policy,
#: not fabric slowdown)
EXT9_NET_SPLIT = (("link", 0.5), ("netdeg", 0.5))


@dataclass
class NetFaultRow:
    link_mtbf_s: float          #: per-link MTBF swept by the DSE
    ckpt_period: int
    baseline_total: float       #: fault-free runtime of the same spec
    mean_total: float
    slowdown: float             #: mean_total / baseline_total
    analytic_slowdown: float    #: closed-form expectation (netavail)
    net_faults: float           #: mean network faults per run
    net_repairs: float
    partition_stalls: float
    retransmits: float          #: mean expected retransmissions per run


def _ext9_spec(link_mtbf_s: float, ckpt_period: int, timesteps: int):
    from repro.core.campaign import CampaignSpec

    # Bandwidth-heavy allreduces on a torus make fabric degradation the
    # dominant cost; node faults are switched off (MTBF >> run length)
    # so the sweep isolates the network domain.
    return CampaignSpec(
        node_mtbf_s=1e9,
        ckpt_period=ckpt_period,
        nranks=16,
        nnodes=8,
        timesteps=timesteps,
        compute_s=0.05,
        allreduce_bytes=1 << 26,
        net_topology="torus",
        net_link_mtbf_s=link_mtbf_s,
        net_repair_s=1.0,
        net_fault_split=EXT9_NET_SPLIT,
    )


def ext9_analytic_slowdown(
    link_mtbf_s: float, ckpt_period: int, timesteps: int, baseline_total: float
) -> float:
    """Closed-form expected slowdown for one EXT9 sweep point.

    Degradations are active a stationary fraction of wall time
    (:func:`~repro.analytical.netavail.active_probability` of the
    netdeg arrival stream); while active, each timestep's communication
    share inflates by the full degraded-collective ratio
    (:func:`~repro.analytical.netavail.degraded_collective_inflation`);
    and the two regimes compose time-shared
    (:func:`~repro.analytical.netavail.time_shared_slowdown` — the
    harmonic form, since degraded windows cover fewer timesteps exactly
    because each is slower).  Hard link failures only stretch the
    latency term, negligible for these bandwidth-dominated allreduces.
    """
    from repro.analytical.netavail import (
        active_probability,
        degraded_collective_inflation,
        time_shared_slowdown,
    )
    from repro.network.health import link_count

    spec = _ext9_spec(link_mtbf_s, ckpt_period, timesteps)
    topo = spec.build_topology()
    netdeg_rate = (
        link_count(topo) / link_mtbf_s * dict(EXT9_NET_SPLIT).get("netdeg", 0.0)
    )
    f = active_probability(netdeg_rate, spec.net_repair_s)
    coll_inflation = degraded_collective_inflation(
        topo,
        spec.allreduce_bytes,
        degrade_factor=spec.net_degrade_factor,
        loss_prob=spec.net_loss_prob,
    )
    serial = timesteps * spec.compute_s + (
        timesteps // ckpt_period
    ) * spec.ckpt_cost_s
    comm_fraction = max(0.0, 1.0 - serial / baseline_total)
    ts_inflation = 1.0 + comm_fraction * (coll_inflation - 1.0)
    return time_shared_slowdown(f, ts_inflation)


def network_fault_dse(
    link_mtbfs: Sequence[float] = (8.0, 16.0, 48.0),
    ckpt_periods: Sequence[int] = (5, 10),
    timesteps: int = 40,
    reps: int = 6,
    seed: int = 0,
) -> list[NetFaultRow]:
    """EXT9 — link-MTBF x checkpoint-interval DSE on a degraded fabric.

    Sweeps the per-link MTBF of a 4x4 torus under the
    :data:`EXT9_NET_SPLIT` mix (hard link failures + de-rated/lossy
    links) against the checkpoint cadence, and cross-checks the
    simulated slowdown against the closed-form steady-state expectation
    (:func:`ext9_analytic_slowdown`).  Faults here never kill ranks —
    the cost is rerouted, de-rated, retransmitting communication — so
    the slowdown isolates what the network fault domain adds on top of
    fail-stop modeling.
    """
    from repro.core.campaign import CampaignSpec, build_campaign_simulator
    from repro.core.fault_injection import RecoveryPolicy
    from repro.core.montecarlo import derive_seeds

    policy = RecoveryPolicy()
    seeds = derive_seeds(seed, reps)
    rows: list[NetFaultRow] = []
    for period in ckpt_periods:
        base_spec = _ext9_spec(link_mtbfs[0], period, timesteps)
        base = build_campaign_simulator(
            base_spec, int(seeds[0]), policy, inject=False
        ).run(max_events=50_000_000)
        for mtbf in link_mtbfs:
            spec = _ext9_spec(mtbf, period, timesteps)
            results = []
            for s in seeds:
                sim = build_campaign_simulator(spec, int(s), policy)
                results.append(sim.run(max_events=50_000_000))
            mean_total = float(np.mean([r.total_time for r in results]))
            rows.append(
                NetFaultRow(
                    link_mtbf_s=float(mtbf),
                    ckpt_period=period,
                    baseline_total=base.total_time,
                    mean_total=mean_total,
                    slowdown=mean_total / base.total_time,
                    analytic_slowdown=ext9_analytic_slowdown(
                        mtbf, period, timesteps, base.total_time
                    ),
                    net_faults=float(np.mean([r.net_faults for r in results])),
                    net_repairs=float(
                        np.mean([r.net_repairs for r in results])
                    ),
                    partition_stalls=float(
                        np.mean([r.net_partition_stalls for r in results])
                    ),
                    retransmits=float(
                        np.mean([r.net_retransmits for r in results])
                    ),
                )
            )
    return rows


def format_ext9(rows: list[NetFaultRow]) -> str:
    lines = [
        "EXT9 — network fault DSE (4x4 torus, link mix: "
        + ", ".join(f"{k}={w:g}" for k, w in EXT9_NET_SPLIT)
        + ")",
        f"{'link MTBF':>10s}{'ckpt/ts':>9s}{'baseline':>10s}{'mean':>9s}"
        f"{'slowdown':>10s}{'analytic':>10s}{'faults':>8s}{'stalls':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.link_mtbf_s:>9.0f}s{r.ckpt_period:>9d}"
            f"{r.baseline_total:>9.2f}s{r.mean_total:>8.2f}s"
            f"{r.slowdown:>9.2f}x{r.analytic_slowdown:>9.2f}x"
            f"{r.net_faults:>8.1f}{r.partition_stalls:>8.1f}"
        )
    lines.append(
        "slowdown is simulated mean over fault seeds; analytic is the "
        "steady-state closed form (repro.analytical.netavail)"
    )
    return "\n".join(lines)
