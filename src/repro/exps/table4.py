"""Table IV: full-system simulation validation.

Paper values (MAPE of simulated vs measured total runtime):

* LULESH + no fault-tolerance:       20.13%
* LULESH + Level 1 checkpointing:    17.64%
* LULESH + Levels 1 & 2:             14.54%

The reproduction computes each scenario's MAPE over a grid of
(epr, ranks) full-run points: simulated Monte-Carlo mean total vs
measured total on the virtual Quartz.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.validation import ValidationReport
from repro.exps.casestudy import (
    CASE_EPRS,
    CASE_TIMESTEPS,
    CaseStudyContext,
    case_scenarios,
    get_context,
)

PAPER_TABLE4 = {
    "no_ft": 20.13,
    "l1": 17.64,
    "l1+l2": 14.54,
}

#: default validation points: the figure rank counts across all problem sizes
TABLE4_RANKS = (64, 1000)


def full_system_mape(
    ctx: Optional[CaseStudyContext] = None,
    eprs: Sequence[int] = CASE_EPRS,
    ranks: Sequence[int] = TABLE4_RANKS,
    timesteps: int = CASE_TIMESTEPS,
    reps: int = 3,
    measured_reps: int = 2,
) -> dict[str, ValidationReport]:
    """Per-scenario validation reports over the (epr, ranks) grid."""
    ctx = ctx or get_context()
    reports: dict[str, ValidationReport] = {}
    for scenario in case_scenarios():
        rep = ValidationReport(scenario.name)
        for r in ranks:
            for e in eprs:
                mc = ctx.simulate(e, r, scenario, timesteps=timesteps, reps=reps)
                measured = ctx.measure_mean_total(
                    e, r, scenario, timesteps=timesteps, reps=measured_reps
                )
                rep.add({"epr": e, "ranks": r}, measured, mc.total_time.mean)
        reports[scenario.name] = rep
    return reports


def format_table4(reports: dict[str, ValidationReport]) -> str:
    lines = [
        "Table IV — validation for full system simulation",
        f"{'Fault-tolerance level':<36s}{'reproduced':>12s}{'paper':>10s}",
    ]
    label = {
        "no_ft": "LULESH + No Fault-Tolerance",
        "l1": "LULESH + Level 1 Checkpointing",
        "l1+l2": "LULESH + Levels 1 & 2 Checkpointing",
    }
    for name, rep in reports.items():
        paper = PAPER_TABLE4.get(name)
        paper_s = f"{paper:.2f}%" if paper is not None else "n/a"
        lines.append(
            f"{label.get(name, name):<36s}{rep.mape:>11.2f}%{paper_s:>10s}"
        )
    return "\n".join(lines)
