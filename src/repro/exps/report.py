"""Full experiment report: regenerate every artifact into one markdown file.

``python -m repro.exps.report [--out EXPERIMENTS.md] [--reps N]`` runs the
entire evaluation — every paper table and figure plus the extension and
ablation experiments — and writes a paper-vs-measured markdown report.
The repository's EXPERIMENTS.md is this module's output.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Optional

#: (section id, title, notes) in report order
_SECTIONS = [
    (
        "fig1",
        "Fig. 1 — CMT-bone on Vulcan: benchmark-vs-simulation DSE",
        "Validation points are Monte-Carlo distributions vs measured "
        "one-timestep job runs; prediction extends past the allocation "
        "to 1M ranks via the validated models plus topology-scaled "
        "communication.",
    ),
    (
        "table3",
        "Table III — instance-model validation (MAPE)",
        "Paper: timestep 6.64%, L1 16.68%, L2 14.50%. Expect the same "
        "ordering (compute kernel far more predictable than the "
        "storage/communication-bound checkpoint kernels) and band.",
    ),
    (
        "fig5",
        "Fig. 5 — model scaling vs problem size (epr)",
        "Checkpoint curves above the timestep curve, all growing with "
        "epr; the epr=30 column is pure prediction (notional node with "
        "more memory).",
    ),
    (
        "fig6",
        "Fig. 6 — model scaling vs number of ranks",
        "Checkpoint kernels scale much faster with ranks than the "
        "weak-scaling timestep; 1331 ranks is pure prediction beyond the "
        "1000-rank allocation.",
    ),
    (
        "fig7",
        "Fig. 7 — full application runtime, 64 ranks",
        "200 timesteps, checkpoint period 40; the three FT scenarios of "
        "the case study with checkpoint instants marked.",
    ),
    (
        "fig8",
        "Fig. 8 — full application runtime, 1000 ranks",
        "Same, at the allocation limit. The paper reports growing "
        "divergence at this corner (its Figs. 6D/8); ours diverges "
        "there too.",
    ),
    (
        "table4",
        "Table IV — full-system simulation validation (MAPE)",
        "Paper: no-FT 20.13%, L1 17.64%, L1&L2 14.54%, over full-run "
        "totals.",
    ),
    (
        "fig9",
        "Fig. 9 — overhead prediction matrix",
        "Percent of the same-epr 64-rank no-FT prediction. Expected "
        "shape: grows with FT level, ranks, and problem size; the "
        "L1+L2 @ 1000 ranks @ epr 25 cell is the extreme corner.",
    ),
    (
        "fig4",
        "Fig. 4 — fault-assumption Cases 1-4",
        "Cases 2 and 4 (fault injection without/with FT) are the "
        "paper's future work, implemented here. Failure rates are "
        "accelerated so a ~1 s job sees faults.",
    ),
    (
        "ext1",
        "EXT1 — all four FTI levels in full-system simulation",
        "The case study stopped at L1/L2; with communication and "
        "RS-encode kernels modeled, the whole of Table I simulates.",
    ),
    (
        "ext2",
        "EXT2 — checkpoint-level selection vs system MTBF",
        "Analytic expected-waste ranking using the fitted per-level "
        "costs; the optimum migrates to higher levels as reliability "
        "degrades.",
    ),
    (
        "ext3",
        "EXT3 — architectural DSE: fat tree vs notional dragonfly",
        "Plug-and-play interconnect swap under identical applications "
        "and FT scenarios.",
    ),
    (
        "ext4",
        "EXT4 — hardware DSE: NVRAM checkpoint storage",
        "The validated L1/L2 models scaled 4x faster, standing in for a "
        "storage upgrade; no-FT runtime unchanged, checkpoint overhead "
        "collapses.",
    ),
    (
        "ext5",
        "EXT5 — simulated checkpoint-level DSE under mixed faults",
        "Fault injection with a software/node-loss mix and level-aware "
        "recovery: L1 checkpoints cannot recover node losses, so an "
        "L1-only run restarts from scratch on them.  At this job length "
        "L1's cheap checkpoints still win on total time, but its wasted "
        "work is by far the worst — the asymmetry that pushes the "
        "optimum to higher levels as jobs lengthen and scale grows "
        "(exactly what EXT2's analytic sweep shows).",
    ),
    (
        "ext6",
        "EXT6 — ABFT vs checkpoint-restart under silent data corruption",
        "The paper's other named FT technique: checksum ABFT catches the "
        "SDC that C/R is blind to, at an arithmetic overhead shrinking "
        "with problem size (a real Huang-Abraham codec backs the "
        "numbers).",
    ),
    (
        "ext7",
        "EXT7 — modeling granularity: coarse vs fine kernels",
        "BE-SST's speed/accuracy knob: one timestep model vs force+EOS "
        "subkernel models of the same application.",
    ),
    (
        "abl1",
        "ABL1 — modeling method: interpolation vs symbolic regression",
        "Both of the paper's Model-Development methods on identical "
        "calibration data.",
    ),
    (
        "abl2",
        "ABL2 — checkpoint period vs Young/Daly",
        "Fault-injected sweep of the period; the simulated optimum "
        "should bracket Daly's analytic interval.",
    ),
    (
        "abl3",
        "ABL3 — analytical reliability-aware speedup baselines",
        "The related work's abstract models (Amdahl/Gustafson under "
        "faults, replication), for contrast with BE-SST's concrete "
        "predictions.",
    ),
    (
        "abl4",
        "ABL4 — sequential vs conservative-parallel DES engine",
        "The SST-substitute's YAWNS-style engine is observationally "
        "identical to the sequential engine.",
    ),
]


def _runner(section: str, seed: int, reps: int) -> Callable[[], str]:
    from repro.cli import _run_experiment

    return lambda: _run_experiment(section, seed, reps)


def generate_report(
    out_path: Optional[str] = None,
    seed: int = 0,
    reps: int = 3,
    sections: Optional[list[str]] = None,
    echo: bool = True,
) -> str:
    """Run every experiment and return (and optionally write) the report."""
    chosen = sections or [s for s, _, _ in _SECTIONS]
    parts = [
        "# EXPERIMENTS — paper vs reproduction",
        "",
        "Generated by `python -m repro.exps.report` (virtual-testbed "
        "measurements; see DESIGN.md for the substitution rationale). "
        f"Settings: seed={seed}, Monte-Carlo reps={reps}.",
        "",
        "Absolute numbers are not expected to match the paper (the "
        "substrate is a synthetic testbed, not LLNL Quartz); the *shape* "
        "— orderings, scaling directions, error bands, crossovers — is "
        "the reproduction target and is asserted by "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for section, title, notes in _SECTIONS:
        if section not in chosen:
            continue
        t0 = time.time()
        if echo:
            print(f"[report] running {section}...", file=sys.stderr)
        try:
            body = _runner(section, seed, reps)()
        except Exception as exc:  # keep the report usable if one fails
            body = f"(FAILED: {exc})"
        elapsed = time.time() - t0
        parts += [
            f"## {title}",
            "",
            notes,
            "",
            "```",
            body,
            "```",
            "",
            f"_regenerated in {elapsed:.1f}s — `python -m repro {section}`_",
            "",
        ]
    text = "\n".join(parts)
    if out_path is not None:
        Path(out_path).write_text(text)
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--sections", nargs="*", default=None,
        help="subset of section ids (default: all)",
    )
    args = parser.parse_args(argv)
    generate_report(args.out, args.seed, args.reps, args.sections)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
