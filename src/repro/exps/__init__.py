"""Experiment drivers: one module per table/figure of the paper.

Every driver returns plain data structures (dicts/lists) plus a
``format_*`` helper that renders the paper-style table, so the same code
backs the examples, the benchmark harness and EXPERIMENTS.md.

========  ====================================================
module    reproduces
========  ====================================================
fig1      Fig. 1 — CMT-bone on Vulcan benchmark-vs-sim DSE
fig5_6    Figs. 5-6 — instance-model scaling validation
table3    Table III — instance-model MAPE
fig7_8    Figs. 7-8 — full-application runtime curves
table4    Table IV — full-system simulation MAPE
fig9      Fig. 9 — overhead prediction matrix
fig4      Fig. 4 — fault-assumption Cases 1-4 (incl. the
          paper's future-work fault injection)
ablations ABL1-ABL4 — modeling method, Young/Daly, analytical
          baselines, DES engine equivalence
extensions EXT1-EXT7 — all FTI levels, level selection,
          architectural/hardware DSE, level-aware fault DSE,
          ABFT vs C/R, modeling granularity
report    the full markdown report (writes EXPERIMENTS.md)
========  ====================================================
"""

from repro.exps.casestudy import (
    CaseStudyContext,
    get_context,
    CASE_EPRS,
    CASE_RANKS,
    CASE_TIMESTEPS,
    CKPT_PERIOD,
    case_scenarios,
)

__all__ = [
    "CaseStudyContext",
    "get_context",
    "CASE_EPRS",
    "CASE_RANKS",
    "CASE_TIMESTEPS",
    "CKPT_PERIOD",
    "case_scenarios",
]
