"""Fig. 1: BE-SST DSE of CMT-bone on Vulcan.

Benchmarked vs simulated timestep-runtime *distributions* across
(problem size, MPI ranks), validated up to a 128k-core-scale allocation
and predicted beyond the machine (to 1M ranks).  Each point is a
Monte-Carlo distribution, reproducing the scatter + pop-out structure of
the paper's figure.

The DES simulation is run for the validation region; the prediction
region composes the same models analytically (timestep model + exchange
+ allreduce cost), since a million simulated rank components exceeds
what the in-process engine should be asked to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.ft import NO_FT
from repro.core.instructions import Collective, Exchange
from repro.core.montecarlo import MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.core.workflow import ModelDevelopment, build_archbeo
from repro.apps.cmtbone import cmtbone_appbeo
from repro.testbed.machine import measure_application_run
from repro.testbed.vulcan import make_vulcan

#: validation ranks (simulated AND measured) — powers of 8 on the torus
FIG1_VALIDATE_RANKS = (16, 128, 1024, 4096)
#: prediction ranks (model-composed only), up to 1M
FIG1_PREDICT_RANKS = (32_768, 262_144, 1_048_576)
FIG1_ELEM_SIZES = (5, 10, 15)
FIG1_ELEMENTS = 64


@dataclass
class Fig1Point:
    """One scatter point (a distribution) of Fig. 1."""

    elem_size: int
    ranks: int
    predicted_mean: float
    predicted_std: float
    measured_mean: Optional[float]
    measured_std: Optional[float]

    @property
    def is_prediction(self) -> bool:
        return self.measured_mean is None

    @property
    def percent_error(self) -> Optional[float]:
        if self.measured_mean is None:
            return None
        return 100.0 * abs(self.predicted_mean - self.measured_mean) / self.measured_mean


def _analytic_timestep(arch, params: dict, nranks: int, max_validated: int) -> float:
    """Model-composed timestep time (prediction region).

    A polynomial model fitted on ranks <= ``max_validated`` is not
    trustworthy 1000x beyond its grid, so the kernel model is evaluated at
    the validation edge and the ranks-dependence beyond it comes from the
    topology-scaled communication terms (exchange + allreduce) — models
    "validated at smaller sizes" composed with the architecture, as the
    paper does for the beyond-the-machine region of Fig. 1.
    """
    clamped = dict(params)
    clamped["ranks"] = min(nranks, max_validated)
    face_bytes = int(params["elements"]) * int(params["elem_size"]) ** 2 * 8
    kernel = arch.predict("cmtbone_timestep", clamped)
    kernel *= _straggler_factor(arch.models["cmtbone_timestep"], nranks)
    return (
        kernel
        + arch.exchange_time(Exchange(nbytes=face_bytes, neighbors=6))
        + arch.collective_time(Collective("allreduce", nbytes=8), nranks)
    )


def _straggler_factor(model, nranks: int, trials: int = 64) -> float:
    """Expected max-over-ranks inflation of a bulk-synchronous step.

    Estimated from the model's empirical noise factors (the bootstrap max
    saturates at the pool maximum once ``nranks`` far exceeds the pool).
    """
    factors = getattr(model, "noise_factors", None)
    if factors is None or len(factors) == 0 or nranks <= 1:
        return 1.0
    factors = np.asarray(factors, dtype=float)
    if nranks >= 20 * factors.size:
        return float(factors.max())
    rng = np.random.default_rng(0)
    draws = factors[rng.integers(0, factors.size, size=(trials, nranks))]
    return float(draws.max(axis=1).mean())


def cmtbone_dse(
    elem_sizes: Sequence[int] = FIG1_ELEM_SIZES,
    validate_ranks: Sequence[int] = FIG1_VALIDATE_RANKS,
    predict_ranks: Sequence[int] = FIG1_PREDICT_RANKS,
    elements: int = FIG1_ELEMENTS,
    reps: int = 10,
    seed: int = 0,
) -> list[Fig1Point]:
    """Run the Fig. 1 experiment end to end."""
    machine = make_vulcan()
    grid = [
        {"elem_size": es, "elements": elements, "ranks": r}
        for es in elem_sizes
        for r in validate_ranks
    ]
    # A generous sample count matters here: the straggler max over
    # thousands of ranks is dominated by rare outlier samples, and the
    # Monte-Carlo noise pool can only replay outliers it has seen.
    dev = ModelDevelopment(
        machine, ["cmtbone_timestep"], grid=grid, samples_per_point=30, seed=seed
    ).run()
    arch = build_archbeo(machine, dev.models())
    app = cmtbone_appbeo(timesteps=1)

    points: list[Fig1Point] = []
    for es in elem_sizes:
        for r in validate_ranks:
            params = {"elem_size": es, "elements": elements, "ranks": r}

            def factory(s, _r=r, _es=es):
                return BESSTSimulator(
                    app,
                    arch,
                    nranks=_r,
                    params={"elem_size": _es, "elements": elements},
                    seed=s,
                    record_timelines="none",
                )

            mc = MonteCarloRunner(reps=reps, base_seed=seed + 31).run(factory)
            # job-level measurement: one-timestep runs whose duration is
            # the straggler max over ranks, matching what the simulated
            # totals represent
            measured = np.array(
                [
                    measure_application_run(
                        machine,
                        r,
                        1,
                        NO_FT,
                        {"elem_size": es, "elements": elements},
                        timestep_kernel="cmtbone_timestep",
                        seed=seed + 97 + i,
                    ).total_time
                    for i in range(reps)
                ]
            )
            points.append(
                Fig1Point(
                    elem_size=es,
                    ranks=r,
                    predicted_mean=mc.total_time.mean,
                    predicted_std=mc.total_time.std,
                    measured_mean=float(measured.mean()),
                    measured_std=float(measured.std(ddof=1)),
                )
            )
        for r in predict_ranks:
            params = {"elem_size": es, "elements": elements, "ranks": r}
            base = _analytic_timestep(arch, params, r, max(validate_ranks))
            noise = getattr(arch.models["cmtbone_timestep"], "noise_rel_std", 0.0)
            points.append(
                Fig1Point(
                    elem_size=es,
                    ranks=r,
                    predicted_mean=base,
                    predicted_std=base * noise,
                    measured_mean=None,
                    measured_std=None,
                )
            )
    return points


def format_fig1(points: list[Fig1Point]) -> str:
    lines = [
        "Fig. 1 — CMT-bone on Vulcan: benchmarked vs simulated timestep "
        "distributions (* = prediction beyond the machine)",
        f"{'elem':>5s}{'ranks':>10s}{'sim mean':>12s}{'sim std':>10s}"
        f"{'meas mean':>12s}{'err %':>8s}",
    ]
    for p in points:
        meas = f"{p.measured_mean * 1e3:9.2f}ms" if p.measured_mean else "         *"
        err = f"{p.percent_error:7.1f}%" if p.percent_error is not None else "       -"
        lines.append(
            f"{p.elem_size:>5d}{p.ranks:>10d}{p.predicted_mean * 1e3:>10.2f}ms"
            f"{p.predicted_std * 1e3:>8.2f}ms{meas:>12s}{err:>8s}"
        )
    mapes = [p.percent_error for p in points if p.percent_error is not None]
    if mapes:
        lines.append(f"validation MAPE: {np.mean(mapes):.2f}%")
    return "\n".join(lines)
