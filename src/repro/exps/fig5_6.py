"""Figs. 5-6: instance-model scaling validation and prediction.

For each instrumented kernel (LULESH timestep, L1 checkpoint, L2
checkpoint) compare the fitted model's prediction against fresh testbed
measurements over the Table II grid (the *validation* region left of the
dashed line), then extend the curves into the *prediction* region:
epr = 30 (a notional node with more memory, Fig. 5) and ranks = 1331
(beyond the 1000-rank allocation, Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exps.casestudy import (
    CASE_EPRS,
    CASE_KERNELS,
    CASE_RANKS,
    CaseStudyContext,
    get_context,
)

#: prediction-region extensions (beyond what the testbed can measure)
PREDICT_EPR = 30
PREDICT_RANKS = 1331


@dataclass
class ScalingRow:
    """One point of a Fig. 5/6 curve."""

    kernel: str
    epr: int
    ranks: int
    predicted: float
    measured: Optional[float]  #: None in the prediction region

    @property
    def is_prediction(self) -> bool:
        return self.measured is None


def instance_scaling(
    ctx: Optional[CaseStudyContext] = None,
    validation_samples: int = 5,
) -> list[ScalingRow]:
    """All rows of Figs. 5-6 (both figures show the same data)."""
    ctx = ctx or get_context()
    rows: list[ScalingRow] = []
    for kernel in CASE_KERNELS:
        model = ctx.dev.fitted[kernel].model
        # validation region
        for epr in CASE_EPRS:
            for ranks in CASE_RANKS:
                params = {"epr": epr, "ranks": ranks}
                rows.append(
                    ScalingRow(
                        kernel=kernel,
                        epr=epr,
                        ranks=ranks,
                        predicted=model.predict(params),
                        measured=ctx.measure_kernel_mean(
                            kernel, params, nsamples=validation_samples
                        ),
                    )
                )
        # prediction region: larger problem size (Fig. 5 right of line)
        for ranks in CASE_RANKS:
            params = {"epr": PREDICT_EPR, "ranks": ranks}
            rows.append(
                ScalingRow(kernel, PREDICT_EPR, ranks, model.predict(params), None)
            )
        # prediction region: more ranks than the allocation (Fig. 6)
        for epr in CASE_EPRS:
            params = {"epr": epr, "ranks": PREDICT_RANKS}
            rows.append(
                ScalingRow(kernel, epr, PREDICT_RANKS, model.predict(params), None)
            )
    return rows


def _series(rows, kernel, by):
    out = {}
    for r in rows:
        if r.kernel != kernel:
            continue
        out.setdefault(getattr(r, by), []).append(r)
    return out


def format_fig5(rows: list[ScalingRow]) -> str:
    """Fig. 5 view: runtime vs problem size (epr), series per kernel,
    averaged over the measurable rank grid (the ranks=1331 prediction rows
    belong to Fig. 6's axis and are excluded here)."""
    rows = [r for r in rows if r.ranks != PREDICT_RANKS]
    lines = ["Fig. 5 — runtime vs problem size (mean over ranks; * = prediction)"]
    eprs = sorted({r.epr for r in rows})
    header = "kernel               " + "".join(f"{e:>12d}" for e in eprs)
    lines.append(header)
    for kernel in CASE_KERNELS:
        by_epr = _series(rows, kernel, "epr")
        cells = []
        for e in eprs:
            pts = by_epr.get(e, [])
            pred = sum(p.predicted for p in pts) / len(pts)
            star = "*" if all(p.is_prediction for p in pts) else " "
            cells.append(f"{pred * 1e3:10.2f}ms{star}")
        lines.append(f"{kernel:<20s} " + "".join(cells))
    return "\n".join(lines)


def format_fig6(rows: list[ScalingRow]) -> str:
    """Fig. 6 view: runtime vs ranks, series per kernel, averaged over the
    measurable problem sizes (the epr=30 prediction rows belong to
    Fig. 5's axis and are excluded here)."""
    rows = [r for r in rows if r.epr != PREDICT_EPR]
    lines = ["Fig. 6 — runtime vs ranks (mean over epr; * = prediction)"]
    ranks = sorted({r.ranks for r in rows})
    lines.append("kernel               " + "".join(f"{k:>12d}" for k in ranks))
    for kernel in CASE_KERNELS:
        by_ranks = _series(rows, kernel, "ranks")
        cells = []
        for k in ranks:
            pts = by_ranks.get(k, [])
            pred = sum(p.predicted for p in pts) / len(pts)
            star = "*" if all(p.is_prediction for p in pts) else " "
            cells.append(f"{pred * 1e3:10.2f}ms{star}")
        lines.append(f"{kernel:<20s} " + "".join(cells))
    return "\n".join(lines)
