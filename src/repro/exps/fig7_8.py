"""Figs. 7-8: full-application runtime prediction (64 and 1000 ranks).

Total LULESH+FTI runtime over 200 timesteps under the three FT scenarios,
simulated (BE-SST Monte-Carlo) against measured (virtual-Quartz runs),
with the checkpoint instants marked (the figures' black dots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exps.casestudy import (
    CASE_TIMESTEPS,
    CaseStudyContext,
    case_scenarios,
    get_context,
)

#: the figures use the mid-grid problem size
FIG78_EPR = 10


@dataclass
class FullRunCurve:
    """One scenario's measured-vs-simulated runtime curve."""

    scenario: str
    ranks: int
    epr: int
    measured_total: float
    simulated_total_mean: float
    simulated_total_std: float
    measured_curve: np.ndarray          #: cumulative time after each timestep
    simulated_curve: np.ndarray         #: same, from the rank-0 sim timeline
    checkpoint_marks: list[tuple[float, int]]

    @property
    def percent_error(self) -> float:
        return (
            100.0
            * abs(self.simulated_total_mean - self.measured_total)
            / self.measured_total
        )


def _sim_cumulative_curve(result, timesteps: int) -> np.ndarray:
    """Cumulative job time at the end of each timestep from the rank-0
    timeline (a timestep ends when its dt-allreduce completes)."""
    tl = result.timelines.get(0)
    if tl is None:
        return np.array([])
    ends = [e.t_end for e in tl.entries if e.kind == "collective" and e.label == "allreduce"]
    return np.asarray(ends[:timesteps])


def full_system_curves(
    ranks: int,
    epr: int = FIG78_EPR,
    ctx: Optional[CaseStudyContext] = None,
    timesteps: int = CASE_TIMESTEPS,
    reps: int = 5,
) -> list[FullRunCurve]:
    """Figs. 7 (ranks=64) / 8 (ranks=1000): one curve per FT scenario."""
    ctx = ctx or get_context()
    out = []
    for scenario in case_scenarios():
        mc = ctx.simulate(epr, ranks, scenario, timesteps=timesteps, reps=reps)
        meas = ctx.measure_run(epr, ranks, scenario, timesteps=timesteps)
        sim0 = mc.results[0]
        out.append(
            FullRunCurve(
                scenario=scenario.name,
                ranks=ranks,
                epr=epr,
                measured_total=meas.total_time,
                simulated_total_mean=mc.total_time.mean,
                simulated_total_std=mc.total_time.std,
                measured_curve=meas.cumulative_times(),
                simulated_curve=_sim_cumulative_curve(sim0, timesteps),
                checkpoint_marks=sim0.checkpoint_marks(),
            )
        )
    return out


def format_fig7_8(curves: list[FullRunCurve]) -> str:
    """Summary table for one figure's curves."""
    if not curves:
        return "(no curves)"
    ranks = curves[0].ranks
    lines = [
        f"Fig. {'7' if ranks == 64 else '8'} — full application runtime, "
        f"{ranks} ranks, epr={curves[0].epr}, {len(curves[0].measured_curve)} timesteps",
        f"{'scenario':<10s}{'measured':>12s}{'simulated':>12s}{'+/-':>8s}"
        f"{'err %':>8s}{'ckpts':>7s}",
    ]
    for c in curves:
        lines.append(
            f"{c.scenario:<10s}{c.measured_total:>11.3f}s"
            f"{c.simulated_total_mean:>11.3f}s{c.simulated_total_std:>7.3f}s"
            f"{c.percent_error:>7.1f}%{len(c.checkpoint_marks):>7d}"
        )
    return "\n".join(lines)
