"""Fig. 9: overhead prediction for full-system simulation.

Two tables (64 and 1000 ranks), rows = FT scenarios, columns = problem
size.  Each cell is the predicted total runtime as a percentage of the
same-epr, 64-rank, no-FT prediction (which is why the paper's "No FT /
64 ranks" row hovers around 100%).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dse import overhead_matrix, sweep
from repro.exps.casestudy import (
    CASE_TIMESTEPS,
    CaseStudyContext,
    case_scenarios,
    get_context,
)

#: Fig. 9 axes
FIG9_EPRS = (10, 15, 20, 25)
FIG9_RANKS = (64, 1000)

#: the paper's Fig. 9 cells, keyed (epr, ranks, scenario)
PAPER_FIG9 = {
    (10, 64, "no_ft"): 100, (15, 64, "no_ft"): 109, (20, 64, "no_ft"): 103, (25, 64, "no_ft"): 108,
    (10, 64, "l1"): 109, (15, 64, "l1"): 140, (20, 64, "l1"): 135, (25, 64, "l1"): 135,
    (10, 64, "l1+l2"): 183, (15, 64, "l1+l2"): 247, (20, 64, "l1+l2"): 220, (25, 64, "l1+l2"): 294,
    (10, 1000, "no_ft"): 119, (15, 1000, "no_ft"): 127, (20, 1000, "no_ft"): 151, (25, 1000, "no_ft"): 170,
    (10, 1000, "l1"): 215, (15, 1000, "l1"): 278, (20, 1000, "l1"): 324, (25, 1000, "l1"): 428,
    (10, 1000, "l1+l2"): 550, (15, 1000, "l1+l2"): 810, (20, 1000, "l1+l2"): 1185, (25, 1000, "l1+l2"): 1374,
}


def overhead_prediction(
    ctx: Optional[CaseStudyContext] = None,
    eprs: Sequence[int] = FIG9_EPRS,
    ranks: Sequence[int] = FIG9_RANKS,
    timesteps: int = CASE_TIMESTEPS,
    reps: int = 3,
) -> dict[tuple, float]:
    """Percent-overhead cells, normalised per problem size.

    Returns ``{(epr, ranks, scenario_name): percent}``.
    """
    ctx = ctx or get_context()
    scenarios = case_scenarios()

    times = sweep(
        lambda point: ctx.simulate(
            point.epr, point.ranks, point.scenario, timesteps=timesteps, reps=reps
        ).total_time.mean,
        eprs,
        ranks,
        scenarios,
    )
    # Normalise each epr column by its own (64 ranks, no FT) prediction,
    # matching the paper's presentation.
    out: dict[tuple, float] = {}
    for e in eprs:
        base_key = (e, 64, "no_ft")
        column = {k: v for k, v in times.items() if k[0] == e}
        out.update(overhead_matrix(column, baseline_key=base_key))
    return out


def format_fig9(
    pct: dict[tuple, float],
    eprs: Sequence[int] = FIG9_EPRS,
    ranks: Sequence[int] = FIG9_RANKS,
    show_paper: bool = True,
) -> str:
    """Fig. 9's two tables, optionally with the paper's cells alongside."""
    lines = ["Fig. 9 — overhead prediction (reproduced% [paper%])"]
    for r in ranks:
        lines.append(f"\n{r} Ranks      " + "".join(f"{e:>16d}" for e in eprs))
        for s in ("no_ft", "l1", "l1+l2"):
            cells = []
            for e in eprs:
                v = pct.get((e, r, s))
                p = PAPER_FIG9.get((e, r, s)) if show_paper else None
                if v is None:
                    cells.append(f"{'n/a':>16s}")
                elif p is not None:
                    cells.append(f"{v:>8.0f}% [{p:>4d}%]")
                else:
                    cells.append(f"{v:>15.0f}%")
            lines.append(f"  {s:<10s}" + "".join(cells))
    return "\n".join(lines)
