"""Shared case-study context (Section IV experimental setup).

Table II parameters: epr in {5,10,15,20,25}, ranks in {8,64,216,512,1000}
(perfect cubes divisible by group_size*node_size = 8), FTI group size 4,
node size 2; 200-timestep runs with a 40-timestep checkpoint period.

:func:`get_context` performs the Model Development phase once per
(seed, options) and caches it process-wide, since every figure and table
driver starts from the same fitted models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.beo import ArchBEO
from repro.core.ft import NO_FT, FTScenario, scenario_l1, scenario_l1_l2
from repro.core.montecarlo import MonteCarloResult, MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.core.workflow import ModelDevelopment, ModelDevelopmentResult, build_archbeo
from repro.apps.lulesh import lulesh_appbeo
from repro.models.symreg import GPConfig
from repro.testbed.machine import MeasuredRun, VirtualMachine, measure_application_run
from repro.testbed.quartz import make_quartz

#: Table II
CASE_EPRS: tuple[int, ...] = (5, 10, 15, 20, 25)
CASE_RANKS: tuple[int, ...] = (8, 64, 216, 512, 1000)
CASE_TIMESTEPS = 200
CKPT_PERIOD = 40

#: instrumented kernels of the case study
CASE_KERNELS = ("lulesh_timestep", "fti_l1", "fti_l2")


def case_scenarios(period: int = CKPT_PERIOD) -> list[FTScenario]:
    """The three fault-tolerance scenarios of Figs. 7-9."""
    return [NO_FT, scenario_l1(period), scenario_l1_l2(period)]


@dataclass
class CaseStudyContext:
    """Everything the case-study experiments share."""

    machine: VirtualMachine
    dev: ModelDevelopmentResult
    archbeo: ArchBEO
    seed: int
    _sim_cache: dict = field(default_factory=dict, repr=False)
    _measure_cache: dict = field(default_factory=dict, repr=False)

    # -- simulation ---------------------------------------------------------------

    def simulate(
        self,
        epr: int,
        ranks: int,
        scenario: FTScenario,
        timesteps: int = CASE_TIMESTEPS,
        reps: int = 5,
        record_timelines: str = "rank0",
    ) -> MonteCarloResult:
        """Monte-Carlo BE-SST simulation of one design point (cached)."""
        key = (epr, ranks, scenario.name, timesteps, reps, record_timelines)
        hit = self._sim_cache.get(key)
        if hit is not None:
            return hit
        app = lulesh_appbeo(timesteps=timesteps, scenario=scenario)

        def factory(seed: int) -> BESSTSimulator:
            return BESSTSimulator(
                app,
                self.archbeo,
                nranks=ranks,
                params={"epr": epr},
                seed=seed,
                record_timelines=record_timelines,
            )

        result = MonteCarloRunner(reps=reps, base_seed=self.seed + 1000).run(factory)
        self._sim_cache[key] = result
        return result

    # -- measurement (ground truth) ---------------------------------------------------

    def measure_run(
        self,
        epr: int,
        ranks: int,
        scenario: FTScenario,
        timesteps: int = CASE_TIMESTEPS,
        rep: int = 0,
    ) -> MeasuredRun:
        """One measured full run on the virtual Quartz (cached)."""
        key = (epr, ranks, scenario.name, timesteps, rep)
        hit = self._measure_cache.get(key)
        if hit is None:
            hit = measure_application_run(
                self.machine,
                ranks,
                timesteps,
                scenario,
                {"epr": epr},
                seed=self.seed + 5000 + rep,
            )
            self._measure_cache[key] = hit
        return hit

    def measure_mean_total(
        self,
        epr: int,
        ranks: int,
        scenario: FTScenario,
        timesteps: int = CASE_TIMESTEPS,
        reps: int = 3,
    ) -> float:
        """Mean measured total over *reps* runs."""
        return float(
            np.mean(
                [
                    self.measure_run(epr, ranks, scenario, timesteps, rep=i).total_time
                    for i in range(reps)
                ]
            )
        )

    def measure_kernel_mean(
        self, kernel: str, params: Mapping[str, float], nsamples: int = 5
    ) -> float:
        """Fresh measured mean of one kernel (validation-side samples,
        independent of the calibration campaign)."""
        samples = self.machine.measure(
            kernel, params, nsamples=nsamples, seed=self.seed + 9000
        )
        return float(np.mean(samples))


_CONTEXTS: dict = {}


def get_context(
    seed: int = 0,
    samples_per_point: int = 10,
    gp_config: Optional[GPConfig] = None,
    allocation_nodes: int = 500,
) -> CaseStudyContext:
    """Build (or fetch the cached) case-study context.

    Runs the benchmark campaign over the Table II grid on the virtual
    Quartz and fits the three kernel models with symbolic regression —
    the Model Development phase that everything else consumes.
    """
    key = (seed, samples_per_point, id(gp_config) if gp_config else None, allocation_nodes)
    ctx = _CONTEXTS.get(key)
    if ctx is not None:
        return ctx
    machine = make_quartz(allocation_nodes=allocation_nodes)
    dev = ModelDevelopment(
        machine,
        CASE_KERNELS,
        samples_per_point=samples_per_point,
        gp_config=gp_config,
        seed=seed,
    ).run()
    archbeo = build_archbeo(machine, dev.models())
    ctx = CaseStudyContext(machine=machine, dev=dev, archbeo=archbeo, seed=seed)
    _CONTEXTS[key] = ctx
    return ctx
