"""Performance-model development (the BE-SST "Model Development" phase).

This subpackage turns benchmarking samples into callable performance
models, supporting both modeling methods described in the paper:

* :class:`~repro.models.lut.LookupTableModel` — interpolation over a
  sample look-up table, drawing from the calibration distribution at exact
  parameter hits (the Monte-Carlo behaviour in Fig. 1's pop-out).
* :class:`~repro.models.symreg.SymbolicRegressionModel` — genetic-
  programming symbolic regression (Chenna et al.), the method used by the
  paper's case study.

:class:`~repro.models.dataset.BenchmarkDataset` is the common container
for timing samples keyed by system parameters; :mod:`repro.models.metrics`
holds the error metrics (MAPE, ...) used throughout validation.
"""

from repro.models.dataset import BenchmarkDataset
from repro.models.base import (
    PerformanceModel,
    ConstantModel,
    CallableModel,
    ScaledModel,
    ModelError,
)
from repro.models.registry import ModelRegistry
from repro.models.lut import LookupTableModel
from repro.models.metrics import mape, mae, rmse, r2_score, percent_error
from repro.models.symreg import (
    Expression,
    SymbolicRegressionModel,
    SymbolicRegressor,
    parse_expression,
)
from repro.models.calibration import CalibrationPipeline, FittedKernelModel

__all__ = [
    "BenchmarkDataset",
    "PerformanceModel",
    "ConstantModel",
    "CallableModel",
    "ScaledModel",
    "ModelRegistry",
    "ModelError",
    "LookupTableModel",
    "mape",
    "mae",
    "rmse",
    "r2_score",
    "percent_error",
    "Expression",
    "SymbolicRegressionModel",
    "SymbolicRegressor",
    "parse_expression",
    "CalibrationPipeline",
    "FittedKernelModel",
]
