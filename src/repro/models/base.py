"""Performance-model interface.

A performance model answers one question for the simulator: *given these
system parameters, how long does this abstract instruction take?*  Models
may be stochastic — :meth:`PerformanceModel.predict` accepts an optional
RNG so Monte-Carlo simulation can draw from the calibration distribution
(deterministic mean prediction when no RNG is supplied).
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping, Optional, Sequence

import numpy as np


class ModelError(RuntimeError):
    """Raised when a model cannot produce a prediction."""


class PerformanceModel(abc.ABC):
    """Abstract base for all performance models.

    Attributes
    ----------
    param_names:
        The system parameters the model consumes; extra keys in the
        mapping passed to :meth:`predict` are ignored.
    """

    param_names: tuple[str, ...] = ()

    @abc.abstractmethod
    def predict(
        self,
        params: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Predicted runtime (seconds) for *params*.

        With *rng*, stochastic models draw from their calibration
        distribution; without, they return the deterministic central
        prediction.
        """

    def predict_many(
        self,
        param_list: Sequence[Mapping[str, float]],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Vector of predictions for a sequence of parameter mappings."""
        return np.asarray([self.predict(p, rng) for p in param_list], dtype=float)

    def _check_params(self, params: Mapping[str, float]) -> None:
        missing = [n for n in self.param_names if n not in params]
        if missing:
            raise ModelError(
                f"{type(self).__name__} missing parameters {missing}; got "
                f"{sorted(params)}"
            )


class ConstantModel(PerformanceModel):
    """Always predicts the same value; useful for tests and stubs."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative runtime {value!r}")
        self.value = float(value)

    def predict(self, params, rng=None) -> float:
        return self.value


class ScaledModel(PerformanceModel):
    """Wraps another model, scaling its predictions by a constant factor.

    This is the Co-Design phase's "what if the hardware were different"
    knob: e.g. a notional NVRAM-equipped node writing checkpoints 4x
    faster is the validated L1 model scaled by 0.25 — model replacement
    without re-benchmarking, exactly the plug-and-play DSE the workflow
    advertises.
    """

    def __init__(self, inner: PerformanceModel, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.inner = inner
        self.factor = float(factor)
        self.param_names = inner.param_names

    def predict(self, params, rng=None) -> float:
        return self.factor * self.inner.predict(params, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScaledModel({self.factor} * {self.inner!r})"


class CallableModel(PerformanceModel):
    """Adapts ``f(params) -> seconds`` (optionally ``f(params, rng)``).

    Parameters
    ----------
    fn:
        The prediction function.
    param_names:
        Declared parameters, for interface checking.
    stochastic:
        When true, *fn* is called as ``fn(params, rng)``.
    """

    def __init__(
        self,
        fn: Callable,
        param_names: Sequence[str] = (),
        stochastic: bool = False,
    ) -> None:
        self.fn = fn
        self.param_names = tuple(param_names)
        self.stochastic = stochastic

    def predict(self, params, rng=None) -> float:
        self._check_params(params)
        if self.stochastic:
            out = self.fn(params, rng)
        else:
            out = self.fn(params)
        out = float(out)
        if not np.isfinite(out) or out < 0:
            raise ModelError(f"model produced invalid runtime {out!r} for {dict(params)!r}")
        return out
