"""Model persistence: save and load fitted performance models.

The Model Development phase is the expensive half of the workflow; teams
run it once per machine and share the fitted models.  A
:class:`ModelRegistry` serialises a named set of models (symbolic
regression and look-up tables) plus metadata to a single JSON document,
and can rebuild a ready-to-simulate ArchBEO model dict from it.

``CallableModel``/``ConstantModel`` are process-local by design and are
rejected with a clear error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.models.base import ConstantModel, ModelError, PerformanceModel
from repro.models.dataset import BenchmarkDataset
from repro.models.lut import LookupTableModel
from repro.models.symreg.model import SymbolicRegressionModel

_FORMAT_VERSION = 1


def _serialize_model(model: PerformanceModel) -> dict:
    if isinstance(model, SymbolicRegressionModel):
        return model.to_dict()
    if isinstance(model, LookupTableModel):
        return {
            "type": "lut",
            "dataset": model.dataset.to_dict(),
            "interpolation": model.interpolation,
            "sample_mode": model.sample_mode,
            "extrapolation": model.extrapolation,
            "noise": model.noise,
        }
    if isinstance(model, ConstantModel):
        return {"type": "constant", "value": model.value}
    raise ModelError(
        f"model of type {type(model).__name__} is not serialisable; "
        "use SymbolicRegressionModel, LookupTableModel or ConstantModel"
    )


def _deserialize_model(data: Mapping) -> PerformanceModel:
    kind = data.get("type")
    if kind == "symreg":
        return SymbolicRegressionModel.from_dict(data)
    if kind == "lut":
        return LookupTableModel(
            BenchmarkDataset.from_dict(data["dataset"]),
            interpolation=data.get("interpolation", "multilinear"),
            sample_mode=data.get("sample_mode", "draw"),
            extrapolation=data.get("extrapolation", "linear"),
            noise=data.get("noise", "none"),
        )
    if kind == "constant":
        return ConstantModel(data["value"])
    raise ModelError(f"unknown serialised model type {kind!r}")


class ModelRegistry:
    """A named collection of persistable performance models.

    Parameters
    ----------
    machine:
        Label of the machine the models were calibrated on (metadata).
    """

    def __init__(self, machine: str = "") -> None:
        self.machine = machine
        self._models: dict[str, PerformanceModel] = {}

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, kernel: str) -> bool:
        return kernel in self._models

    def add(self, kernel: str, model: PerformanceModel) -> "ModelRegistry":
        """Register *model* under *kernel* (validates serialisability)."""
        _serialize_model(model)  # fail fast on unserialisable models
        self._models[kernel] = model
        return self

    def get(self, kernel: str) -> PerformanceModel:
        try:
            return self._models[kernel]
        except KeyError:
            raise KeyError(
                f"no model for kernel {kernel!r}; registered: {sorted(self._models)}"
            ) from None

    def kernels(self) -> list[str]:
        return sorted(self._models)

    def as_dict(self) -> dict[str, PerformanceModel]:
        """The plain ``{kernel: model}`` mapping ArchBEOs consume."""
        return dict(self._models)

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "machine": self.machine,
                "models": {
                    k: _serialize_model(m) for k, m in sorted(self._models.items())
                },
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelRegistry":
        data = json.loads(text)
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise ModelError(
                f"unsupported registry format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        reg = cls(machine=data.get("machine", ""))
        for kernel, blob in data.get("models", {}).items():
            reg._models[kernel] = _deserialize_model(blob)
        return reg

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "ModelRegistry":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_fitted(cls, fitted: Mapping, machine: str = "") -> "ModelRegistry":
        """Build from a ``ModelDevelopment`` result's fitted mapping."""
        reg = cls(machine=machine)
        for kernel, fk in fitted.items():
            reg.add(kernel, fk.model if hasattr(fk, "model") else fk)
        return reg
