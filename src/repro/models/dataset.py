"""Benchmark datasets: timing samples keyed by system-parameter tuples.

The Model Development phase instruments application blocks with timers and
collects *multiple samples per parameter combination* to capture machine
noise (Section III-A).  :class:`BenchmarkDataset` is that table — the
interface between the virtual testbed (``repro.testbed``), the modeling
methods (``repro.models.lut`` / ``repro.models.symreg``) and validation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np


class BenchmarkDataset:
    """Timing samples for one instrumented kernel.

    Parameters
    ----------
    param_names:
        Ordered names of the system parameters that key each row (e.g.
        ``("epr", "ranks")``).
    kernel:
        Name of the instrumented block (e.g. ``"lulesh_timestep"``).
    """

    def __init__(self, param_names: Sequence[str], kernel: str = "") -> None:
        if not param_names:
            raise ValueError("param_names must be non-empty")
        if len(set(param_names)) != len(param_names):
            raise ValueError(f"duplicate parameter names in {param_names!r}")
        self.param_names: tuple[str, ...] = tuple(param_names)
        self.kernel = kernel
        self._rows: dict[tuple[float, ...], list[float]] = {}

    # -- construction --------------------------------------------------------

    def key_of(self, params: Mapping[str, float]) -> tuple[float, ...]:
        """Normalise a parameter mapping into this dataset's row key."""
        try:
            return tuple(float(params[name]) for name in self.param_names)
        except KeyError as exc:
            raise KeyError(
                f"missing parameter {exc.args[0]!r}; expected {self.param_names}"
            ) from None

    def add_sample(self, params: Mapping[str, float], value: float) -> None:
        """Record one timing sample for *params*."""
        v = float(value)
        if not np.isfinite(v) or v < 0:
            raise ValueError(f"invalid timing sample {value!r}")
        self._rows.setdefault(self.key_of(params), []).append(v)

    def add_samples(self, params: Mapping[str, float], values: Iterable[float]) -> None:
        for v in values:
            self.add_sample(params, v)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def n_samples(self) -> int:
        return sum(len(v) for v in self._rows.values())

    def keys(self) -> list[tuple[float, ...]]:
        return sorted(self._rows)

    def params_of(self, key: tuple[float, ...]) -> dict[str, float]:
        return dict(zip(self.param_names, key))

    def samples(self, params: Mapping[str, float]) -> np.ndarray:
        """All samples recorded at exactly *params* (empty array if none)."""
        return np.asarray(self._rows.get(self.key_of(params), []), dtype=float)

    def mean(self, params: Mapping[str, float]) -> float:
        s = self.samples(params)
        if s.size == 0:
            raise KeyError(f"no samples at {dict(params)!r}")
        return float(s.mean())

    def std(self, params: Mapping[str, float]) -> float:
        s = self.samples(params)
        if s.size == 0:
            raise KeyError(f"no samples at {dict(params)!r}")
        return float(s.std(ddof=1)) if s.size > 1 else 0.0

    def grid_values(self, name: str) -> np.ndarray:
        """Sorted unique values of parameter *name* present in the table."""
        if name not in self.param_names:
            raise KeyError(f"unknown parameter {name!r}")
        idx = self.param_names.index(name)
        return np.unique([k[idx] for k in self._rows])

    def to_arrays(
        self, aggregate: str = "mean"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flatten to ``(X, y)`` training arrays.

        Parameters
        ----------
        aggregate:
            ``"mean"``/``"median"`` collapse each row's samples to one
            target; ``"none"`` emits one (params, sample) pair per sample.
        """
        xs: list[tuple[float, ...]] = []
        ys: list[float] = []
        for key in self.keys():
            vals = np.asarray(self._rows[key], dtype=float)
            if aggregate == "mean":
                xs.append(key)
                ys.append(float(vals.mean()))
            elif aggregate == "median":
                xs.append(key)
                ys.append(float(np.median(vals)))
            elif aggregate == "none":
                for v in vals:
                    xs.append(key)
                    ys.append(float(v))
            else:
                raise ValueError(f"unknown aggregate {aggregate!r}")
        return np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)

    # -- manipulation ----------------------------------------------------------

    def split(
        self, test_fraction: float = 0.25, seed: int = 0
    ) -> tuple["BenchmarkDataset", "BenchmarkDataset"]:
        """Split rows (parameter combinations) into train/test datasets.

        The symbolic-regression workflow of the paper splits benchmarking
        data into training and testing partitions; the split is by
        parameter combination so the test set is genuinely unseen.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
        keys = self.keys()
        if len(keys) < 2:
            raise ValueError("need at least 2 parameter combinations to split")
        rng = np.random.default_rng(seed)
        n_test = max(1, int(round(len(keys) * test_fraction)))
        n_test = min(n_test, len(keys) - 1)
        test_idx = set(rng.choice(len(keys), size=n_test, replace=False).tolist())
        train = BenchmarkDataset(self.param_names, self.kernel)
        test = BenchmarkDataset(self.param_names, self.kernel)
        for i, key in enumerate(keys):
            target = test if i in test_idx else train
            target._rows[key] = list(self._rows[key])
        return train, test

    def filter(self, predicate) -> "BenchmarkDataset":
        """Subset rows whose parameter dict satisfies *predicate*."""
        out = BenchmarkDataset(self.param_names, self.kernel)
        for key, vals in self._rows.items():
            if predicate(self.params_of(key)):
                out._rows[key] = list(vals)
        return out

    def merge(self, other: "BenchmarkDataset") -> "BenchmarkDataset":
        """Union of two datasets over identical parameter spaces."""
        if other.param_names != self.param_names:
            raise ValueError(
                f"parameter mismatch: {self.param_names} vs {other.param_names}"
            )
        out = BenchmarkDataset(self.param_names, self.kernel or other.kernel)
        for src in (self, other):
            for key, vals in src._rows.items():
                out._rows.setdefault(key, []).extend(vals)
        return out

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "param_names": list(self.param_names),
            "rows": [
                {"params": list(key), "samples": list(vals)}
                for key, vals in sorted(self._rows.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchmarkDataset":
        ds = cls(data["param_names"], data.get("kernel", ""))
        for row in data["rows"]:
            ds._rows[tuple(float(v) for v in row["params"])] = [
                float(s) for s in row["samples"]
            ]
        return ds

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path) -> "BenchmarkDataset":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BenchmarkDataset(kernel={self.kernel!r}, params={self.param_names}, "
            f"rows={len(self)}, samples={self.n_samples})"
        )
