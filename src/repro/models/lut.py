"""Look-up-table interpolation models.

This is the paper's first modeling method: *"the training data is
organized into lookup tables based on the corresponding system parameters.
When a function from the AppBEO is called during simulation, the
corresponding lookup table is searched for the function arguments, and one
of many samples is selected for a runtime prediction.  If the parameters
in the current function call do not have an existing sample ... the
simulator estimates a value by using one of several implemented methods to
interpolate."*

Supported interpolation methods:

``"multilinear"``
    Recursive per-axis linear interpolation of the per-point mean over the
    rectilinear grid formed by the table (with optional linear
    extrapolation past the edges).
``"nearest"``
    Value of the closest table point (normalised axes).
``"idw"``
    Inverse-distance weighting over all table points; also the automatic
    fallback when a multilinear query needs a missing grid corner.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.models.base import ModelError, PerformanceModel
from repro.models.dataset import BenchmarkDataset


class LookupTableModel(PerformanceModel):
    """Interpolating sample table backed by a :class:`BenchmarkDataset`.

    Parameters
    ----------
    dataset:
        Calibration samples.
    interpolation:
        ``"multilinear"``, ``"nearest"`` or ``"idw"``.
    sample_mode:
        Behaviour at exact parameter hits: ``"draw"`` picks one calibration
        sample with the supplied RNG (Monte-Carlo mode; falls back to the
        mean when no RNG is given), ``"mean"`` / ``"median"`` are
        deterministic.
    extrapolation:
        ``"clamp"`` holds edge values; ``"linear"`` extends the edge slope
        (multilinear only).
    noise:
        ``"relative"`` multiplies interpolated predictions by a noise
        factor ``sample/mean`` drawn at the nearest table point, so
        Monte-Carlo variance is preserved away from grid points;
        ``"none"`` returns the plain interpolant.
    """

    def __init__(
        self,
        dataset: BenchmarkDataset,
        interpolation: str = "multilinear",
        sample_mode: str = "draw",
        extrapolation: str = "linear",
        noise: str = "none",
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        if interpolation not in ("multilinear", "nearest", "idw"):
            raise ValueError(f"unknown interpolation {interpolation!r}")
        if sample_mode not in ("draw", "mean", "median"):
            raise ValueError(f"unknown sample_mode {sample_mode!r}")
        if extrapolation not in ("clamp", "linear"):
            raise ValueError(f"unknown extrapolation {extrapolation!r}")
        if noise not in ("none", "relative"):
            raise ValueError(f"unknown noise mode {noise!r}")
        self.dataset = dataset
        self.param_names = dataset.param_names
        self.interpolation = interpolation
        self.sample_mode = sample_mode
        self.extrapolation = extrapolation
        self.noise = noise

        self._keys = np.asarray(dataset.keys(), dtype=float)  # (n, d)
        self._means = np.asarray(
            [np.mean(dataset._rows[k]) for k in dataset.keys()], dtype=float
        )
        self._axes = [dataset.grid_values(n) for n in self.param_names]
        # Axis spans for normalised distance computations.
        spans = np.array(
            [max(ax.max() - ax.min(), 1.0) for ax in self._axes], dtype=float
        )
        self._spans = spans
        self._mean_by_key = {
            tuple(k): m for k, m in zip(map(tuple, self._keys), self._means)
        }

    # -- public API ------------------------------------------------------------

    def predict(
        self,
        params: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        self._check_params(params)
        key = self.dataset.key_of(params)
        samples = self.dataset._rows.get(key)
        if samples is not None:
            return self._predict_exact(np.asarray(samples, dtype=float), rng)
        value = self._interpolate(np.asarray(key, dtype=float))
        if self.noise == "relative" and rng is not None:
            value *= self._noise_factor(np.asarray(key, dtype=float), rng)
        return max(float(value), 0.0)

    # -- exact hits --------------------------------------------------------------

    def _predict_exact(self, samples: np.ndarray, rng) -> float:
        if self.sample_mode == "draw" and rng is not None:
            return float(rng.choice(samples))
        if self.sample_mode == "median":
            return float(np.median(samples))
        return float(samples.mean())

    # -- interpolation -------------------------------------------------------------

    def _interpolate(self, point: np.ndarray) -> float:
        if self.interpolation == "nearest":
            return self._nearest_value(point)
        if self.interpolation == "idw":
            return self._idw(point)
        return self._multilinear(point)

    def _nearest_index(self, point: np.ndarray) -> int:
        d = np.linalg.norm((self._keys - point) / self._spans, axis=1)
        return int(np.argmin(d))

    def _nearest_value(self, point: np.ndarray) -> float:
        return float(self._means[self._nearest_index(point)])

    def _idw(self, point: np.ndarray, power: float = 2.0) -> float:
        d = np.linalg.norm((self._keys - point) / self._spans, axis=1)
        exact = d < 1e-12
        if np.any(exact):
            return float(self._means[exact][0])
        w = 1.0 / d**power
        return float(np.sum(w * self._means) / np.sum(w))

    def _bracket(self, axis: np.ndarray, v: float) -> tuple[int, int, float]:
        """Indices of the bracketing grid values and interpolation weight."""
        if len(axis) == 1:
            return 0, 0, 0.0
        hi = int(np.searchsorted(axis, v))
        hi = min(max(hi, 1), len(axis) - 1)
        lo = hi - 1
        t = (v - axis[lo]) / (axis[hi] - axis[lo])
        if self.extrapolation == "clamp":
            t = min(max(t, 0.0), 1.0)
        return lo, hi, float(t)

    def _multilinear(self, point: np.ndarray) -> float:
        brackets = [
            self._bracket(ax, v) for ax, v in zip(self._axes, point)
        ]

        def corner_value(bits: int) -> float:
            key = tuple(
                self._axes[d][brackets[d][1] if (bits >> d) & 1 else brackets[d][0]]
                for d in range(len(brackets))
            )
            val = self._mean_by_key.get(key)
            if val is None:
                raise _MissingCorner(key)
            return val

        n = len(brackets)

        def reduce(d: int, bits: int) -> float:
            if d == n:
                return corner_value(bits)
            lo = reduce(d + 1, bits)
            hi = reduce(d + 1, bits | (1 << d))
            t = brackets[d][2]
            return lo * (1 - t) + hi * t

        try:
            return float(reduce(0, 0))
        except _MissingCorner:
            # Sparse table: fall back to inverse-distance weighting.
            return self._idw(point)

    # -- Monte-Carlo noise ------------------------------------------------------------

    def _noise_factor(self, point: np.ndarray, rng: np.random.Generator) -> float:
        idx = self._nearest_index(point)
        key = tuple(self._keys[idx])
        samples = np.asarray(self.dataset._rows[key], dtype=float)
        mean = samples.mean()
        if mean <= 0:
            return 1.0
        return float(rng.choice(samples)) / float(mean)


class _MissingCorner(ModelError):
    """Internal: a multilinear corner is absent from the table."""
