"""The genetic-programming engine behind symbolic regression.

Multi-gene GP in the style of real symbolic-regression tools (and of the
multi-parameter performance-modeling approach of Chenna et al. [19]):

* an individual is a small set of expression trees ("genes");
* its prediction is ``b0 + b1*g1(X) + ... + bk*gk(X)`` with the
  coefficients solved per evaluation by (optionally relative-error
  weighted) least squares — GP only has to discover the *shapes*
  (``epr^3``, ``epr^2*sqrt(ranks)``, ``log(ranks)``, ...), never the
  scales;
* ramped half-and-half initialisation, tournament selection with
  parsimony pressure, high-level gene crossover plus subtree
  crossover/mutation/point mutation/constant jitter;
* a hall of fame scored on the *test* split (the paper's iterative
  train/test process);
* full determinism given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.models.symreg.expr import (
    DEFAULT_BINARY,
    DEFAULT_UNARY,
    Binary,
    Const,
    Expression,
    Unary,
    Var,
)


@dataclass
class GPConfig:
    """Hyper-parameters for :class:`SymbolicRegressor`."""

    population_size: int = 300
    generations: int = 40
    tournament_k: int = 5
    p_crossover: float = 0.65
    p_subtree_mutation: float = 0.15
    p_point_mutation: float = 0.1
    p_const_jitter: float = 0.1
    max_depth: int = 5
    init_depth: tuple[int, int] = (1, 3)
    parsimony: float = 1e-4
    const_range: tuple[float, float] = (-5.0, 5.0)
    unary_ops: Sequence[str] = DEFAULT_UNARY
    binary_ops: Sequence[str] = DEFAULT_BINARY
    elitism: int = 2
    #: genes per individual; prediction is an OLS-fitted linear
    #: combination of the genes (1 = classic GP with linear scaling)
    n_genes: int = 4
    early_stop_nrmse: float = 1e-9
    #: "relative" weights residuals by 1/|y| (right choice when the target
    #: spans orders of magnitude); "nrmse" normalises by std(y)
    fitness: str = "relative"

    def __post_init__(self) -> None:
        total = self.p_crossover + self.p_subtree_mutation + self.p_point_mutation
        if total > 1.0 + 1e-9:
            raise ValueError("operator probabilities exceed 1")
        if self.population_size < 4:
            raise ValueError("population_size must be >= 4")
        if self.n_genes < 1:
            raise ValueError("n_genes must be >= 1")
        if self.fitness not in ("nrmse", "relative"):
            raise ValueError(f"unknown fitness {self.fitness!r}")


@dataclass
class FitResult:
    """Outcome of a :meth:`SymbolicRegressor.fit` run."""

    expression: Expression
    train_nrmse: float
    test_nrmse: Optional[float]
    generations_run: int
    history: list[float] = field(default_factory=list)


class _Individual:
    """A multi-gene individual: genes plus lazily-fitted coefficients."""

    __slots__ = ("genes", "coeffs", "error", "fitness")

    def __init__(self, genes: list[Expression]):
        self.genes = genes
        self.coeffs: Optional[np.ndarray] = None
        self.error = float("inf")
        self.fitness = float("inf")

    def size(self) -> int:
        return sum(g.size() for g in self.genes)


class SymbolicRegressor:
    """Fits an :class:`Expression` to ``(X, y)`` data by genetic programming.

    Parameters
    ----------
    param_names:
        Column names of ``X`` — the variables available to the evolved
        expressions.
    config:
        Hyper-parameters; defaults are sized for the case-study problems
        (2 variables, tens of training points).
    seed:
        Seed for the engine's private RNG.
    """

    def __init__(
        self,
        param_names: Sequence[str],
        config: Optional[GPConfig] = None,
        seed: int = 0,
    ) -> None:
        if not param_names:
            raise ValueError("param_names must be non-empty")
        self.param_names = tuple(param_names)
        self.config = config or GPConfig()
        self.rng = np.random.default_rng(seed)
        self.result: Optional[FitResult] = None

    # -- tree generation ---------------------------------------------------------

    def _random_const(self) -> Const:
        lo, hi = self.config.const_range
        return Const(float(np.round(self.rng.uniform(lo, hi), 4)))

    def _random_leaf(self) -> Expression:
        if self.rng.random() < 0.75:
            return Var(str(self.rng.choice(self.param_names)))
        return self._random_const()

    def _random_tree(self, depth: int, full: bool) -> Expression:
        if depth <= 1 or (not full and self.rng.random() < 0.3):
            return self._random_leaf()
        if self.config.unary_ops and self.rng.random() < 0.25:
            op = str(self.rng.choice(list(self.config.unary_ops)))
            return Unary(op, self._random_tree(depth - 1, full))
        op = str(self.rng.choice(list(self.config.binary_ops)))
        return Binary(
            op,
            self._random_tree(depth - 1, full),
            self._random_tree(depth - 1, full),
        )

    def _random_individual(self, i: int) -> _Individual:
        lo, hi = self.config.init_depth
        depths = list(range(lo, hi + 1))
        ngenes = 1 + int(self.rng.integers(0, self.config.n_genes))
        genes = [
            self._random_tree(depths[(i + g) % len(depths)], full=(i + g) % 2 == 0)
            for g in range(ngenes)
        ]
        return _Individual(genes)

    # -- fitness --------------------------------------------------------------------

    def _design_matrix(self, genes: list[Expression], env: dict, n: int) -> np.ndarray:
        cols = [np.ones(n)]
        for g in genes:
            col = np.broadcast_to(np.asarray(g.evaluate(env), dtype=float), (n,))
            cols.append(np.nan_to_num(col, nan=0.0, posinf=1e30, neginf=-1e30))
        return np.column_stack(cols)

    def _weights(self, y: np.ndarray) -> np.ndarray:
        if self.config.fitness == "relative":
            return 1.0 / np.maximum(np.abs(y), 1e-30)
        return np.ones_like(y)

    def _evaluate(self, ind: _Individual, env: dict, y: np.ndarray) -> None:
        """Solve the gene coefficients by weighted least squares and score."""
        n = y.shape[0]
        A = self._design_matrix(ind.genes, env, n)
        w = self._weights(y)
        Aw = A * w[:, None]
        try:
            coeffs, *_ = np.linalg.lstsq(Aw, y * w, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely fails
            ind.coeffs = None
            ind.error = ind.fitness = 1e30
            return
        if not np.all(np.isfinite(coeffs)):
            ind.coeffs = None
            ind.error = ind.fitness = 1e30
            return
        resid = (A @ coeffs - y) * w
        err = float(np.sqrt(np.mean(resid**2)))
        ind.coeffs = coeffs
        ind.error = err if np.isfinite(err) else 1e30
        ind.fitness = ind.error + self.config.parsimony * ind.size()

    def _score_on(self, ind: _Individual, env: dict, y: np.ndarray) -> float:
        """Error of an already-fitted individual on another split."""
        if ind.coeffs is None:
            return 1e30
        n = y.shape[0]
        A = self._design_matrix(ind.genes, env, n)
        resid = (A @ ind.coeffs - y) * self._weights(y)
        err = float(np.sqrt(np.mean(resid**2)))
        return err if np.isfinite(err) else 1e30

    # -- genetic operators -------------------------------------------------------------

    def _tournament(self, pop: list[_Individual]) -> _Individual:
        idx = self.rng.integers(0, len(pop), size=self.config.tournament_k)
        return min((pop[int(i)] for i in idx), key=lambda ind: ind.fitness)

    def _random_node_index(self, expr: Expression) -> int:
        return int(self.rng.integers(0, expr.size()))

    def _clone(self, ind: _Individual) -> _Individual:
        return _Individual([g.copy() for g in ind.genes])

    def _crossover(self, a: _Individual, b: _Individual) -> _Individual:
        child = self._clone(a)
        if self.rng.random() < 0.4 and len(child.genes) >= 1:
            # High-level: replace or append a whole gene from b.
            donor = b.genes[int(self.rng.integers(0, len(b.genes)))].copy()
            if (
                len(child.genes) < self.config.n_genes
                and self.rng.random() < 0.5
            ):
                child.genes.append(donor)
            else:
                child.genes[int(self.rng.integers(0, len(child.genes)))] = donor
            return child
        # Low-level: subtree crossover between random genes.
        gi = int(self.rng.integers(0, len(child.genes)))
        donor_gene = b.genes[int(self.rng.integers(0, len(b.genes)))]
        donor_sub = list(donor_gene.walk())[self._random_node_index(donor_gene)]
        child.genes[gi] = self._enforce_depth(
            child.genes[gi].replace(self._random_node_index(child.genes[gi]), donor_sub)
        )
        return child

    def _subtree_mutation(self, a: _Individual) -> _Individual:
        child = self._clone(a)
        gi = int(self.rng.integers(0, len(child.genes)))
        sub = self._random_tree(int(self.rng.integers(1, 4)), full=False)
        child.genes[gi] = self._enforce_depth(
            child.genes[gi].replace(self._random_node_index(child.genes[gi]), sub)
        )
        return child

    def _point_mutation(self, a: _Individual) -> _Individual:
        child = self._clone(a)
        gi = int(self.rng.integers(0, len(child.genes)))
        gene = child.genes[gi]
        idx = self._random_node_index(gene)
        target = list(gene.walk())[idx]
        if isinstance(target, Binary):
            op = str(self.rng.choice(list(self.config.binary_ops)))
            child.genes[gi] = gene.replace(idx, Binary(op, target.left, target.right))
        elif isinstance(target, Unary) and self.config.unary_ops:
            op = str(self.rng.choice(list(self.config.unary_ops)))
            child.genes[gi] = gene.replace(idx, Unary(op, target.child))
        else:
            child.genes[gi] = gene.replace(idx, self._random_leaf())
        return child

    def _const_jitter(self, a: _Individual) -> _Individual:
        child = self._clone(a)
        gi = int(self.rng.integers(0, len(child.genes)))
        consts = child.genes[gi].constants()
        if not consts:
            return self._point_mutation(a)
        jittered = [
            c * float(self.rng.normal(1.0, 0.2)) + float(self.rng.normal(0, 0.01))
            for c in consts
        ]
        child.genes[gi] = child.genes[gi].with_constants(jittered)
        return child

    def _enforce_depth(self, expr: Expression) -> Expression:
        if expr.depth() <= self.config.max_depth + 1:
            return expr
        return self._random_tree(self.config.init_depth[1], full=False)

    # -- assembling the champion ---------------------------------------------------------

    @staticmethod
    def _to_expression(ind: _Individual) -> Expression:
        """Materialise ``b0 + sum(bi * gene_i)`` as one expression tree."""
        assert ind.coeffs is not None
        out: Expression = Const(float(ind.coeffs[0]))
        for b, gene in zip(ind.coeffs[1:], ind.genes):
            if b == 0.0:
                continue
            out = Binary("+", out, Binary("*", Const(float(b)), gene.copy()))
        return out.simplify()

    # -- main loop ------------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> FitResult:
        """Evolve an expression fitting ``X -> y``.

        ``X`` has one column per entry of :attr:`param_names`.  When a
        test split is supplied the returned champion is the hall-of-fame
        individual with the best *test* error, which is how the paper's
        tool selects its model each iteration.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X rows {X.shape[0]} != y rows {y.shape[0]}")
        if X.shape[1] != len(self.param_names):
            raise ValueError(
                f"X has {X.shape[1]} columns for {len(self.param_names)} parameters"
            )
        env = {name: X[:, j] for j, name in enumerate(self.param_names)}
        test_env = None
        if X_test is not None and y_test is not None:
            X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
            y_test = np.asarray(y_test, dtype=float).ravel()
            test_env = {
                name: X_test[:, j] for j, name in enumerate(self.param_names)
            }

        cfg = self.config
        pop = [self._random_individual(i) for i in range(cfg.population_size)]
        for ind in pop:
            self._evaluate(ind, env, y)

        hof_ind: Optional[_Individual] = None
        hof_score = float("inf")
        history: list[float] = []
        gens_run = 0

        for gen in range(cfg.generations):
            gens_run = gen + 1
            pop.sort(key=lambda ind: ind.fitness)
            history.append(pop[0].error)

            # Hall of fame scored on the test split when available.
            for cand in pop[: max(cfg.elitism, 1)]:
                score = (
                    self._score_on(cand, test_env, y_test)
                    if test_env is not None
                    else cand.error
                )
                if score < hof_score:
                    hof_score = score
                    hof_ind = cand

            if pop[0].error < cfg.early_stop_nrmse:
                break

            next_pop: list[_Individual] = pop[: cfg.elitism]
            while len(next_pop) < cfg.population_size:
                r = self.rng.random()
                parent = self._tournament(pop)
                if r < cfg.p_crossover:
                    child = self._crossover(parent, self._tournament(pop))
                elif r < cfg.p_crossover + cfg.p_subtree_mutation:
                    child = self._subtree_mutation(parent)
                elif r < cfg.p_crossover + cfg.p_subtree_mutation + cfg.p_point_mutation:
                    child = self._point_mutation(parent)
                elif r < (
                    cfg.p_crossover
                    + cfg.p_subtree_mutation
                    + cfg.p_point_mutation
                    + cfg.p_const_jitter
                ):
                    child = self._const_jitter(parent)
                else:
                    child = self._clone(parent)
                self._evaluate(child, env, y)
                next_pop.append(child)
            pop = next_pop

        if hof_ind is None:  # no generations ran
            hof_ind = min(pop, key=lambda ind: ind.fitness)
        best_expr = self._to_expression(hof_ind)
        result = FitResult(
            expression=best_expr,
            train_nrmse=hof_ind.error,
            test_nrmse=(
                self._score_on(hof_ind, test_env, y_test)
                if test_env is not None
                else None
            ),
            generations_run=gens_run,
            history=history,
        )
        self.result = result
        return result
