"""PerformanceModel wrapper around a fitted symbolic-regression expression.

Carries a calibrated multiplicative noise term (the relative residual
spread observed on the training data) so Monte-Carlo simulation can draw
from a realistic distribution, mirroring how BE-SST "implements Monte
Carlo simulations to capture the variance that exists in the calibration
samples".
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.models.base import ModelError, PerformanceModel
from repro.models.dataset import BenchmarkDataset
from repro.models.symreg.expr import Expression
from repro.models.symreg.gp import GPConfig, SymbolicRegressor
from repro.models.symreg.parser import parse_expression


class SymbolicRegressionModel(PerformanceModel):
    """A closed-form performance model ``t = f(params)``.

    Parameters
    ----------
    expression:
        The fitted expression (or its string form).
    param_names:
        Variables the expression may reference.
    noise_rel_std:
        Standard deviation of the multiplicative noise applied when an RNG
        is passed to :meth:`predict` (log-normal, mean 1) — used when no
        empirical factors are available.
    noise_factors:
        Empirical multiplicative deviations ``sample / point_mean`` pooled
        from the calibration data; when present, Monte-Carlo draws resample
        these (capturing outlier-heavy tails the way BE-SST "selects one of
        many samples").
    floor:
        Minimum returned runtime; protects against an expression dipping
        negative outside its calibration region.
    """

    def __init__(
        self,
        expression: Expression | str,
        param_names: Sequence[str],
        noise_rel_std: float = 0.0,
        noise_factors: Optional[Sequence[float]] = None,
        floor: float = 0.0,
    ) -> None:
        if isinstance(expression, str):
            expression = parse_expression(expression)
        self.expression = expression
        self.param_names = tuple(param_names)
        unknown = expression.variables() - set(self.param_names)
        if unknown:
            raise ModelError(f"expression references unknown variables {unknown}")
        if noise_rel_std < 0:
            raise ValueError(f"negative noise_rel_std {noise_rel_std!r}")
        self.noise_rel_std = float(noise_rel_std)
        self.noise_factors = (
            np.asarray(noise_factors, dtype=float) if noise_factors is not None else None
        )
        if self.noise_factors is not None and (
            self.noise_factors.size == 0 or np.any(self.noise_factors < 0)
        ):
            raise ValueError("noise_factors must be non-empty and non-negative")
        self.floor = float(floor)
        # Simulations call predict() with the same handful of parameter
        # points millions of times; memoise the deterministic part.
        self._cache: dict[tuple, float] = {}
        self._sigma = float(np.sqrt(np.log1p(self.noise_rel_std**2)))

    def predict(
        self,
        params: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        try:
            key = tuple(params[name] for name in self.param_names)
        except KeyError:
            self._check_params(params)
            raise  # pragma: no cover - _check_params raises first
        value = self._cache.get(key)
        if value is None:
            env = {
                name: np.asarray(float(v))
                for name, v in zip(self.param_names, key)
            }
            value = float(self.expression.evaluate(env))
            if len(self._cache) < 65536:
                self._cache[key] = value
        if rng is not None:
            if self.noise_factors is not None:
                value *= float(
                    self.noise_factors[rng.integers(0, self.noise_factors.size)]
                )
            elif self.noise_rel_std > 0:
                value *= float(
                    rng.lognormal(mean=-0.5 * self._sigma**2, sigma=self._sigma)
                )
        return max(value, self.floor)

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "type": "symreg",
            "expression": str(self.expression),
            "param_names": list(self.param_names),
            "noise_rel_std": self.noise_rel_std,
            "noise_factors": (
                self.noise_factors.tolist() if self.noise_factors is not None else None
            ),
            "floor": self.floor,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SymbolicRegressionModel":
        return cls(
            expression=data["expression"],
            param_names=data["param_names"],
            noise_rel_std=data.get("noise_rel_std", 0.0),
            noise_factors=data.get("noise_factors"),
            floor=data.get("floor", 0.0),
        )

    # -- fitting ----------------------------------------------------------------

    @classmethod
    def fit_dataset(
        cls,
        train: BenchmarkDataset,
        test: Optional[BenchmarkDataset] = None,
        config: Optional[GPConfig] = None,
        seed: int = 0,
        log_target: bool = False,
    ) -> "SymbolicRegressionModel":
        """Fit to a :class:`BenchmarkDataset` (mean-aggregated).

        With ``log_target`` the GP fits ``log(t)`` and the model wraps the
        exponential — useful for kernels spanning orders of magnitude.
        """
        X, y = train.to_arrays("mean")
        target = np.log(y) if log_target else y
        Xt = yt = None
        if test is not None and len(test) > 0:
            Xt, yt = test.to_arrays("mean")
            if log_target:
                yt = np.log(yt)
        reg = SymbolicRegressor(train.param_names, config=config, seed=seed)
        result = reg.fit(X, target, Xt, yt)
        expr = result.expression
        if log_target:
            from repro.models.symreg.expr import Unary

            expr = Unary("exp", expr)
        # Calibrate multiplicative noise from the per-point sample spread:
        # pool every sample's relative deviation from its point mean.
        rel_stds = []
        factors: list[float] = []
        for key in train.keys():
            p = train.params_of(key)
            samples = train.samples(p)
            if samples.size > 1 and samples.mean() > 0:
                rel_stds.append(samples.std(ddof=1) / samples.mean())
                factors.extend((samples / samples.mean()).tolist())
        noise = float(np.mean(rel_stds)) if rel_stds else 0.0
        return cls(
            expression=expr,
            param_names=train.param_names,
            noise_rel_std=noise,
            noise_factors=factors if factors else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolicRegressionModel({self.expression}, noise={self.noise_rel_std:.3g})"
