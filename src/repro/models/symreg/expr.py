"""Expression trees for symbolic regression.

Expressions evaluate vectorised over NumPy arrays and use *protected*
operators (division, log, sqrt, pow) so that any tree produced by the
genetic operators yields finite values on any input — a standard GP
hygiene requirement that keeps fitness evaluation total.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

import numpy as np

_EPS = 1e-12
_EXP_CLIP = 60.0
_POW_CLIP = 6.0


class Expression:
    """Base node.  Subclasses: :class:`Const`, :class:`Var`,
    :class:`Unary`, :class:`Binary`."""

    #: node count contribution used by parsimony pressure
    arity = 0

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        """Evaluate over *env* (parameter name -> array), returning finite
        values of the broadcast shape."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        return ()

    def with_children(self, children: tuple["Expression", ...]) -> "Expression":
        """A copy of this node with *children* substituted."""
        raise NotImplementedError

    # -- structural helpers ---------------------------------------------------

    def size(self) -> int:
        """Total node count (complexity measure)."""
        return 1 + sum(c.size() for c in self.children())

    def depth(self) -> int:
        kids = self.children()
        return 1 if not kids else 1 + max(c.depth() for c in kids)

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal."""
        yield self
        for c in self.children():
            yield from c.walk()

    def copy(self) -> "Expression":
        return self.with_children(tuple(c.copy() for c in self.children()))

    def replace(self, index: int, new: "Expression") -> "Expression":
        """A copy with the pre-order node at *index* replaced by *new*."""

        def rec(node: Expression, counter: list[int]) -> Expression:
            if counter[0] == index:
                counter[0] += 1
                return new.copy()
            counter[0] += 1
            kids = tuple(rec(c, counter) for c in node.children())
            return node.with_children(kids) if kids else node

        return rec(self, [0])

    def variables(self) -> set[str]:
        return {n.name for n in self.walk() if isinstance(n, Var)}

    def constants(self) -> list[float]:
        return [n.value for n in self.walk() if isinstance(n, Const)]

    def with_constants(self, values) -> "Expression":
        """A copy with constants replaced in pre-order by *values*."""
        it = iter(values)

        def rec(node: Expression) -> Expression:
            if isinstance(node, Const):
                return Const(float(next(it)))
            kids = tuple(rec(c) for c in node.children())
            return node.with_children(kids) if kids else node

        return rec(self)

    def simplify(self) -> "Expression":
        """Constant folding plus a few algebraic identities."""
        return _simplify(self)

    # -- misc -------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Expression) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expression<{self}>"


class Const(Expression):
    """A floating-point literal."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, env):
        return np.asarray(self.value, dtype=float)

    def with_children(self, children):
        assert not children
        return Const(self.value)

    def __str__(self) -> str:
        # repr() keeps full precision so parse(str(e)) round-trips exactly.
        return repr(self.value)


class Var(Expression):
    """A named parameter."""

    def __init__(self, name: str) -> None:
        if not name.isidentifier():
            raise ValueError(f"invalid variable name {name!r}")
        self.name = name

    def evaluate(self, env):
        try:
            return np.asarray(env[self.name], dtype=float)
        except KeyError:
            raise KeyError(f"variable {self.name!r} missing from environment")

    def with_children(self, children):
        assert not children
        return Var(self.name)

    def __str__(self) -> str:
        return self.name


def _p_sqrt(x):
    return np.sqrt(np.abs(x))


def _p_log(x):
    return np.log(np.abs(x) + _EPS)


def _p_exp(x):
    return np.exp(np.clip(x, -_EXP_CLIP, _EXP_CLIP))


def _p_div(a, b):
    return np.where(np.abs(b) < _EPS, 1.0, a / np.where(np.abs(b) < _EPS, 1.0, b))


def _p_pow(a, b):
    b = np.clip(b, -_POW_CLIP, _POW_CLIP)
    with np.errstate(all="ignore"):
        out = np.power(np.abs(a) + _EPS, b)
    return np.nan_to_num(out, nan=1.0, posinf=1e30, neginf=-1e30)


UNARY_OPS = {
    "neg": np.negative,
    "sqrt": _p_sqrt,
    "log": _p_log,
    "exp": _p_exp,
    "abs": np.abs,
    "cbrt": np.cbrt,
    "square": np.square,
}

BINARY_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": _p_div,
    "pow": _p_pow,
    "min": np.minimum,
    "max": np.maximum,
}

#: operator sets offered to the GP engine by default (pow/min/max excluded;
#: they destabilise the search and the paper's kernels don't need them)
DEFAULT_UNARY = ("sqrt", "log", "square")
DEFAULT_BINARY = ("+", "-", "*", "/")


class Unary(Expression):
    """A one-argument operator node."""

    arity = 1

    def __init__(self, op: str, child: Expression) -> None:
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.child = child

    def evaluate(self, env):
        with np.errstate(all="ignore"):
            out = UNARY_OPS[self.op](self.child.evaluate(env))
        return np.nan_to_num(out, nan=0.0, posinf=1e30, neginf=-1e30)

    def children(self):
        return (self.child,)

    def with_children(self, children):
        (c,) = children
        return Unary(self.op, c)

    def __str__(self) -> str:
        if self.op == "neg":
            return f"(-{self.child})"
        return f"{self.op}({self.child})"


class Binary(Expression):
    """A two-argument operator node."""

    arity = 2

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        with np.errstate(all="ignore"):
            out = BINARY_OPS[self.op](
                self.left.evaluate(env), self.right.evaluate(env)
            )
        return np.nan_to_num(out, nan=0.0, posinf=1e30, neginf=-1e30)

    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return Binary(self.op, left, right)

    def __str__(self) -> str:
        if self.op in ("min", "max", "pow"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


def _simplify(node: Expression) -> Expression:
    kids = tuple(_simplify(c) for c in node.children())
    if kids:
        node = node.with_children(kids)
    # Constant folding.
    if kids and all(isinstance(c, Const) for c in kids):
        try:
            val = float(node.evaluate({}))
            if math.isfinite(val):
                return Const(val)
        except Exception:  # pragma: no cover - protected ops shouldn't raise
            pass
    # Identities.
    if isinstance(node, Binary):
        left, right = node.left, node.right
        lz = isinstance(left, Const) and left.value == 0.0
        rz = isinstance(right, Const) and right.value == 0.0
        lo = isinstance(left, Const) and left.value == 1.0
        ro = isinstance(right, Const) and right.value == 1.0
        if node.op == "+":
            if lz:
                return right
            if rz:
                return left
        elif node.op == "-":
            if rz:
                return left
        elif node.op == "*":
            if lo:
                return right
            if ro:
                return left
            if lz or rz:
                return Const(0.0)
        elif node.op == "/":
            if ro:
                return left
    if isinstance(node, Unary) and node.op == "neg":
        if isinstance(node.child, Unary) and node.child.op == "neg":
            return node.child.child
    return node
