"""Genetic-programming symbolic regression (Chenna et al. [19]).

The paper's case-study models are produced by "our symbolic regression
tool ... through an iterative process", with benchmarking data split into
training and testing partitions.  This package reimplements that tool:

* :mod:`~repro.models.symreg.expr` — vectorised expression trees with
  protected operators,
* :mod:`~repro.models.symreg.parser` — infix parser for round-tripping
  serialised models,
* :mod:`~repro.models.symreg.gp` — the genetic-programming engine
  (tournament selection, subtree crossover/mutation, parsimony pressure,
  optional constant refinement via least squares),
* :mod:`~repro.models.symreg.model` — the
  :class:`~repro.models.base.PerformanceModel` wrapper with calibrated
  multiplicative noise for Monte-Carlo simulation.
"""

from repro.models.symreg.expr import Expression, Const, Var, Unary, Binary
from repro.models.symreg.parser import parse_expression, ParseError
from repro.models.symreg.gp import SymbolicRegressor, GPConfig
from repro.models.symreg.model import SymbolicRegressionModel

__all__ = [
    "Expression",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "parse_expression",
    "ParseError",
    "SymbolicRegressor",
    "GPConfig",
    "SymbolicRegressionModel",
]
