"""Infix parser for serialised symbolic-regression expressions.

Grammar (standard precedence, left-associative):

    expr    := term (('+'|'-') term)*
    term    := unary (('*'|'/') unary)*
    unary   := '-' unary | atom
    atom    := NUMBER | NAME | NAME '(' expr (',' expr)* ')' | '(' expr ')'

Round-trip invariant: ``parse_expression(str(e))`` evaluates identically
to ``e`` (tested with hypothesis).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.models.symreg.expr import (
    BINARY_OPS,
    UNARY_OPS,
    Binary,
    Const,
    Expression,
    Unary,
    Var,
)


class ParseError(ValueError):
    """Raised on malformed expression text."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op>[-+*/(),]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character at {text[pos:pos+10]!r}")
        if m.lastgroup is None:  # pure whitespace tail
            break
        tokens.append((m.lastgroup, m.group(m.lastgroup)))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        tok = self.next()
        if tok[1] != value:
            raise ParseError(f"expected {value!r}, found {tok[1]!r}")

    def parse_expr(self) -> Expression:
        node = self.parse_term()
        while (tok := self.peek()) is not None and tok[1] in ("+", "-"):
            self.next()
            node = Binary(tok[1], node, self.parse_term())
        return node

    def parse_term(self) -> Expression:
        node = self.parse_unary()
        while (tok := self.peek()) is not None and tok[1] in ("*", "/"):
            self.next()
            node = Binary(tok[1], node, self.parse_unary())
        return node

    def parse_unary(self) -> Expression:
        tok = self.peek()
        if tok is not None and tok[1] == "-":
            self.next()
            return Unary("neg", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expression:
        kind, value = self.next()
        if kind == "num":
            return Const(float(value))
        if kind == "name":
            nxt = self.peek()
            if nxt is not None and nxt[1] == "(":
                return self.parse_call(value)
            return Var(value)
        if value == "(":
            node = self.parse_expr()
            self.expect(")")
            return node
        raise ParseError(f"unexpected token {value!r}")

    def parse_call(self, fname: str) -> Expression:
        self.expect("(")
        args = [self.parse_expr()]
        while (tok := self.peek()) is not None and tok[1] == ",":
            self.next()
            args.append(self.parse_expr())
        self.expect(")")
        if fname in UNARY_OPS:
            if len(args) != 1:
                raise ParseError(f"{fname} takes 1 argument, got {len(args)}")
            return Unary(fname, args[0])
        if fname in BINARY_OPS:
            if len(args) != 2:
                raise ParseError(f"{fname} takes 2 arguments, got {len(args)}")
            return Binary(fname, args[0], args[1])
        raise ParseError(f"unknown function {fname!r}")


def parse_expression(text: str) -> Expression:
    """Parse *text* into an :class:`Expression` tree."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    parser = _Parser(tokens)
    node = parser.parse_expr()
    if parser.peek() is not None:
        raise ParseError(f"trailing tokens at {parser.peek()[1]!r}")
    return node
