"""Calibration pipeline: benchmark datasets -> validated performance models.

This module is the executable form of the left half of the paper's Fig. 2:
take the per-kernel timing tables produced by instrumentation, split them
into train/test partitions, fit a model with the selected method, and
report validation error (MAPE) for each kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.models.base import PerformanceModel
from repro.models.dataset import BenchmarkDataset
from repro.models.lut import LookupTableModel
from repro.models.metrics import mape
from repro.models.symreg.gp import GPConfig
from repro.models.symreg.model import SymbolicRegressionModel


@dataclass
class FittedKernelModel:
    """A fitted model plus its validation record for one kernel."""

    kernel: str
    model: PerformanceModel
    method: str
    train_mape: float
    test_mape: Optional[float]
    dataset: BenchmarkDataset = field(repr=False, default=None)

    def summary(self) -> dict:
        return {
            "kernel": self.kernel,
            "method": self.method,
            "train_mape": self.train_mape,
            "test_mape": self.test_mape,
        }


def dataset_mape(model: PerformanceModel, dataset: BenchmarkDataset) -> float:
    """MAPE of *model*'s deterministic predictions vs per-point means."""
    actual, predicted = [], []
    for key in dataset.keys():
        params = dataset.params_of(key)
        actual.append(dataset.mean(params))
        predicted.append(model.predict(params))
    return mape(actual, predicted)


class CalibrationPipeline:
    """Fits and validates models for a set of instrumented kernels.

    Parameters
    ----------
    method:
        ``"symreg"`` (the case study's method) or ``"lut"``.
    test_fraction:
        Held-out fraction of parameter combinations for validation.
    gp_config:
        Hyper-parameters when ``method="symreg"``.
    log_target:
        Fit symbolic regression in log space (useful when kernel times
        span decades, as the checkpoint kernels do).
    seed:
        Controls both the train/test split and the GP engine.
    """

    def __init__(
        self,
        method: str = "symreg",
        test_fraction: float = 0.25,
        gp_config: Optional[GPConfig] = None,
        log_target: bool = False,
        seed: int = 0,
    ) -> None:
        if method not in ("symreg", "lut"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.test_fraction = test_fraction
        self.gp_config = gp_config
        self.log_target = log_target
        self.seed = seed

    def fit_kernel(self, dataset: BenchmarkDataset) -> FittedKernelModel:
        """Fit one kernel's dataset, returning the validated model."""
        if len(dataset) < 2:
            raise ValueError(
                f"kernel {dataset.kernel!r} has {len(dataset)} parameter "
                "combinations; need >= 2"
            )
        train, test = dataset.split(self.test_fraction, seed=self.seed)
        if self.method == "symreg":
            model: PerformanceModel = SymbolicRegressionModel.fit_dataset(
                train,
                test,
                config=self.gp_config,
                seed=self.seed,
                log_target=self.log_target,
            )
        else:
            model = LookupTableModel(train, sample_mode="mean")
        return FittedKernelModel(
            kernel=dataset.kernel,
            model=model,
            method=self.method,
            train_mape=dataset_mape(model, train),
            test_mape=dataset_mape(model, test) if len(test) else None,
            dataset=dataset,
        )

    def fit_all(
        self, datasets: Mapping[str, BenchmarkDataset]
    ) -> dict[str, FittedKernelModel]:
        """Fit every kernel in *datasets* (name -> dataset)."""
        return {name: self.fit_kernel(ds) for name, ds in sorted(datasets.items())}

    @staticmethod
    def validation_table(
        fitted: Mapping[str, FittedKernelModel],
        reference: Optional[Mapping[str, BenchmarkDataset]] = None,
    ) -> dict[str, float]:
        """Per-kernel MAPE table (the shape of the paper's Table III).

        With *reference* datasets (e.g. the full benchmark table including
        held-out points) the error is computed against those; otherwise
        against each model's own full dataset.
        """
        out: dict[str, float] = {}
        for name, fk in fitted.items():
            ds = reference[name] if reference is not None else fk.dataset
            out[name] = dataset_mape(fk.model, ds)
        return out
