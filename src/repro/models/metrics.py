"""Error metrics for model validation.

The paper reports Mean Average Percent Error (MAPE) for both instance
models (Table III) and full-system simulations (Table IV); the other
metrics here are standard companions used by the calibration pipeline.
"""

from __future__ import annotations

import numpy as np


def _as_arrays(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.size == 0:
        raise ValueError("empty input")
    return a, p


def percent_error(actual: float, predicted: float) -> float:
    """Absolute percent error of one prediction: ``100*|p-a|/|a|``."""
    if actual == 0:
        raise ZeroDivisionError("percent error undefined for actual == 0")
    return 100.0 * abs(predicted - actual) / abs(actual)


def mape(actual, predicted) -> float:
    """Mean Absolute Percentage Error, in percent (the paper's metric)."""
    a, p = _as_arrays(actual, predicted)
    if np.any(a == 0):
        raise ZeroDivisionError("MAPE undefined when any actual value is 0")
    return float(np.mean(np.abs((p - a) / a))) * 100.0


def mae(actual, predicted) -> float:
    """Mean absolute error."""
    a, p = _as_arrays(actual, predicted)
    return float(np.mean(np.abs(p - a)))


def rmse(actual, predicted) -> float:
    """Root-mean-square error."""
    a, p = _as_arrays(actual, predicted)
    return float(np.sqrt(np.mean((p - a) ** 2)))


def r2_score(actual, predicted) -> float:
    """Coefficient of determination; 1.0 is a perfect fit."""
    a, p = _as_arrays(actual, predicted)
    ss_res = float(np.sum((a - p) ** 2))
    ss_tot = float(np.sum((a - np.mean(a)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot
