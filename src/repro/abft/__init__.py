"""Algorithm-based fault tolerance (ABFT).

The paper names ABFT as the other fault-tolerance technique its
algorithmic DSE should compare against checkpoint-restart: *"alternate
algorithms that perform the same operations but with more resilience and
overhead, such as using a checksum in a matrix-based code to guard
against silent data corruption."*

This package implements the classic Huang–Abraham checksum scheme for
matrix multiplication — actually detecting and correcting injected
element corruptions — plus its overhead cost model and the
ABFT-vs-checkpointing DSE comparison (silent data corruption is invisible
to C/R, which happily checkpoints corrupted state).
"""

from repro.abft.checksum import (
    ChecksumMatrix,
    abft_matmul,
    encode_columns,
    encode_rows,
    verify_and_correct,
    ABFTError,
)
from repro.abft.costmodel import abft_overhead_ratio, sdc_outcome_probabilities

__all__ = [
    "ChecksumMatrix",
    "abft_matmul",
    "encode_rows",
    "encode_columns",
    "verify_and_correct",
    "ABFTError",
    "abft_overhead_ratio",
    "sdc_outcome_probabilities",
]
