"""Huang–Abraham checksum-protected matrix multiplication.

Encode ``A`` with an appended row of column sums and ``B`` with an
appended column of row sums; then

    A_c @ B_r  =  C_f

is the *full-checksum* product: its last row/column hold the column/row
sums of the true ``C``.  A single corrupted element of ``C`` breaks
exactly one row-sum and one column-sum invariant — locating the element —
and the discrepancy magnitude recovers the true value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


class ABFTError(RuntimeError):
    """Raised when corruption is detected but not correctable."""


def encode_rows(a: np.ndarray) -> np.ndarray:
    """Append a row of column sums (column-checksum encoding of A)."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    return np.vstack([a, a.sum(axis=0)])


def encode_columns(b: np.ndarray) -> np.ndarray:
    """Append a column of row sums (row-checksum encoding of B)."""
    b = np.asarray(b, dtype=float)
    if b.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {b.shape}")
    return np.hstack([b, b.sum(axis=1, keepdims=True)])


@dataclass
class ChecksumMatrix:
    """A full-checksum product matrix ``C_f`` of shape ``(m+1, n+1)``.

    ``data`` includes the checksum row/column; :attr:`payload` is the
    protected ``m x n`` result.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 2 or self.data.shape[0] < 2 or self.data.shape[1] < 2:
            raise ValueError(f"invalid full-checksum shape {self.data.shape}")

    @property
    def payload(self) -> np.ndarray:
        return self.data[:-1, :-1]

    def row_syndrome(self, rtol: float) -> np.ndarray:
        """Boolean mask of rows whose sum invariant is violated."""
        expect = self.data[:-1, :-1].sum(axis=1)
        scale = np.maximum(np.abs(self.data[:-1, -1]), 1.0)
        return np.abs(expect - self.data[:-1, -1]) > rtol * scale

    def col_syndrome(self, rtol: float) -> np.ndarray:
        expect = self.data[:-1, :-1].sum(axis=0)
        scale = np.maximum(np.abs(self.data[-1, :-1]), 1.0)
        return np.abs(expect - self.data[-1, :-1]) > rtol * scale


def abft_matmul(a: np.ndarray, b: np.ndarray) -> ChecksumMatrix:
    """Checksum-protected product of ``a`` (m x k) and ``b`` (k x n)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    return ChecksumMatrix(encode_rows(a) @ encode_columns(b))


def verify_and_correct(
    c: ChecksumMatrix, rtol: float = 1e-8
) -> tuple[np.ndarray, Optional[tuple[int, int]]]:
    """Check the invariants; correct a single corrupted payload element.

    Returns ``(payload, corrected_index)`` where ``corrected_index`` is
    None for a clean matrix.

    Raises
    ------
    ABFTError
        If more than one row/column invariant is broken (multi-element
        corruption exceeds the scheme's correction capability) or if a
        checksum element itself is inconsistent in a non-correctable way.
    """
    rows = np.flatnonzero(c.row_syndrome(rtol))
    cols = np.flatnonzero(c.col_syndrome(rtol))
    if rows.size == 0 and cols.size == 0:
        return c.payload.copy(), None
    if rows.size == 1 and cols.size == 1:
        i, j = int(rows[0]), int(cols[0])
        fixed = c.payload.copy()
        true_value = c.data[i, -1] - (c.payload[i].sum() - c.payload[i, j])
        fixed[i, j] = true_value
        return fixed, (i, j)
    if rows.size == 1 and cols.size == 0:
        # the row-checksum element itself was corrupted; payload is intact
        return c.payload.copy(), (int(rows[0]), c.data.shape[1] - 1)
    if cols.size == 1 and rows.size == 0:
        return c.payload.copy(), (c.data.shape[0] - 1, int(cols[0]))
    raise ABFTError(
        f"uncorrectable corruption: {rows.size} row and {cols.size} column "
        "invariants violated"
    )
