"""ABFT cost/benefit model for algorithmic DSE.

ABFT's trade against checkpoint-restart is qualitative, not just
quantitative: C/R recovers *crashes* but is blind to silent data
corruption (it will happily checkpoint corrupted state), while ABFT
catches SDC in the protected operation at a small arithmetic overhead.
These helpers quantify both sides for DSE tables.
"""

from __future__ import annotations

import math


def abft_overhead_ratio(n: int, k: int | None = None, m: int | None = None) -> float:
    """Relative extra work of checksum-protected matmul vs plain.

    For ``C(m x n) = A(m x k) @ B(k x n)``: plain costs ``2 m k n`` flops;
    the encoded product costs ``2 (m+1) k (n+1)`` plus encoding
    (``m k + k n``) and verification (``2 m n``).  Returns
    ``protected/plain - 1`` (≈ ``1/m + 1/n`` for large square matrices).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = k if k is not None else n
    m = m if m is not None else n
    if k < 1 or m < 1:
        raise ValueError("k and m must be >= 1")
    plain = 2.0 * m * k * n
    protected = 2.0 * (m + 1) * k * (n + 1) + (m * k + k * n) + 2.0 * m * n
    return protected / plain - 1.0


def sdc_outcome_probabilities(
    sdc_rate_per_hour: float,
    job_hours: float,
    abft_coverage: float = 0.95,
) -> dict[str, float]:
    """Probability a job's result is corrupted, with and without ABFT.

    Parameters
    ----------
    sdc_rate_per_hour:
        Rate of silent corruptions striking the protected computation.
    job_hours:
        Exposure window.
    abft_coverage:
        Fraction of strikes landing inside ABFT-protected operations
        (strikes elsewhere are detected by neither technique).

    Returns
    -------
    dict
        ``p_sdc`` (expected >= 1 strike), ``p_bad_plain`` (plain or C/R
        job silently wrong), ``p_bad_abft`` (ABFT job silently wrong —
        only uncovered strikes slip through).
    """
    if sdc_rate_per_hour < 0 or job_hours <= 0:
        raise ValueError("rates must be >= 0 and job_hours > 0")
    if not 0.0 <= abft_coverage <= 1.0:
        raise ValueError(f"abft_coverage must be in [0,1], got {abft_coverage}")
    lam = sdc_rate_per_hour * job_hours
    p_sdc = 1.0 - math.exp(-lam)
    p_bad_abft = 1.0 - math.exp(-lam * (1.0 - abft_coverage))
    return {
        "p_sdc": p_sdc,
        "p_bad_plain": p_sdc,
        "p_bad_abft": p_bad_abft,
    }
