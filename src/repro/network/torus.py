"""k-ary n-dimensional torus (Vulcan's BlueGene/Q 5-D torus).

Nodes are laid out in row-major order over the dimension sizes; the hop
count between two nodes is the sum of per-dimension ring distances
(dimension-ordered routing).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.network.topology import Topology


class Torus(Topology):
    """A torus with arbitrary per-dimension sizes.

    Parameters
    ----------
    dims:
        Size of each dimension, e.g. ``(4, 4, 4, 8, 2)`` for a BG/Q-like
        5-D torus.  ``num_nodes`` is their product.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"invalid torus dims {dims!r}")
        super().__init__(math.prod(dims))
        self.dims = dims

    @classmethod
    def cube(cls, k: int, n: int) -> "Torus":
        """A k-ary n-cube."""
        return cls((k,) * n)

    def coords(self, node: int) -> tuple[int, ...]:
        """Row-major coordinates of *node*."""
        self._check_node(node)
        out = []
        for d in reversed(self.dims):
            out.append(node % d)
            node //= d
        return tuple(reversed(out))

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != len(self.dims):
            raise ValueError(
                f"expected {len(self.dims)} coordinates, got {len(coords)}"
            )
        node = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise IndexError(f"coordinate {c} out of range [0, {d})")
            node = node * d + c
        return node

    def _ring_distance(self, a: int, b: int, size: int) -> int:
        d = abs(a - b)
        return min(d, size - d)

    def hop_count(self, a: int, b: int) -> int:
        ca, cb = self.coords(a), self.coords(b)
        return sum(
            self._ring_distance(x, y, d) for x, y, d in zip(ca, cb, self.dims)
        )

    def neighbors(self, node: int) -> list[int]:
        c = list(self.coords(node))
        out = set()
        for axis, d in enumerate(self.dims):
            if d == 1:
                continue
            for step in (-1, 1):
                nc = c.copy()
                nc[axis] = (nc[axis] + step) % d
                peer = self.node_at(nc)
                if peer != node:
                    out.add(peer)
        return sorted(out)

    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)
