"""Mutable health overlay over a :class:`~repro.network.topology.Topology`.

The structural topologies are immutable — they answer "how far is node a
from node b on a *healthy* interconnect".  Fault-aware simulation needs a
second, mutable layer on top: which links are down, which endpoints are
network-isolated (their switch died), and which links are de-rated or
lossy.  :class:`NetworkHealth` is that layer.

It is built over the topology's exported endpoint graph
(:meth:`Topology.to_networkx`, edge ``weight`` = hop count), so "one
link" here is one neighbour edge of the endpoint graph.  Routes are
recomputed over the surviving graph (weighted shortest path), which gives

* **hop inflation** — a detour around a failed link costs its real extra
  hops,
* **reachability** — :meth:`is_partitioned` / :meth:`group_partitioned`
  answer whether a pair (or a whole checkpoint group) can still
  communicate,
* **route quality** — the worst bandwidth de-rate and the combined loss
  probability along the route actually used.

Every mutation bumps :attr:`version` and invalidates the route cache, so
repeated pricing of the same pair between faults is O(1).  The overlay is
picklable (caches are dropped and rebuilt deterministically), which keeps
simulator snapshot/resume bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.topology import Topology


class NetworkPartitionedError(RuntimeError):
    """No surviving route exists between two endpoints."""


def link_count(topology: "Topology") -> int:
    """Number of links (neighbour edges) in *topology*'s endpoint graph."""
    return topology.to_networkx().number_of_edges()


class NetworkHealth:
    """Link/endpoint failure and degradation state of one topology.

    Parameters
    ----------
    topology:
        The healthy structure.  The overlay never mutates it.
    """

    def __init__(self, topology: "Topology") -> None:
        self.topology = topology
        self._graph = topology.to_networkx()
        #: links in the healthy endpoint graph (the "k failed of L" base)
        self.nlinks = self._graph.number_of_edges()
        self.failed_links: set[frozenset] = set()
        self.failed_nodes: set[int] = set()
        #: edge -> (bandwidth de-rate factor >= 1, loss probability)
        self.degraded: dict[frozenset, tuple[float, float]] = {}
        #: bumped on every mutation; cache invalidation token
        self.version = 0
        self._route_cache: dict[tuple[int, int], Optional[list[int]]] = {}
        self._surviving: Optional[nx.Graph] = None
        self._penalty: Optional[tuple[float, float, float]] = None
        #: node -> healthy-graph component id (baseline is immutable, so
        #: this cache is never dirtied by overlay mutations)
        self._baseline_comp: Optional[dict[int, int]] = None

    # -- state -------------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True when no failure or degradation is active (fast path)."""
        return not (self.failed_links or self.failed_nodes or self.degraded)

    def _edge_key(self, a: int, b: int) -> frozenset:
        self.topology._check_node(a)
        self.topology._check_node(b)
        if not self._graph.has_edge(a, b):
            raise ValueError(
                f"({a}, {b}) is not a link of {type(self.topology).__name__}; "
                f"links are neighbour edges of the endpoint graph"
            )
        return frozenset((a, b))

    def _dirty(self) -> None:
        self.version += 1
        self._route_cache.clear()
        self._surviving = None
        self._penalty = None

    # -- mutations ----------------------------------------------------------------

    def fail_link(self, a: int, b: int) -> None:
        """Take the a–b link out of service."""
        self.failed_links.add(self._edge_key(a, b))
        self._dirty()

    def repair_link(self, a: int, b: int) -> None:
        """Restore the a–b link (clears failure *and* degradation)."""
        key = self._edge_key(a, b)
        self.failed_links.discard(key)
        self.degraded.pop(key, None)
        self._dirty()

    def degrade_link(
        self, a: int, b: int, derate: float = 2.0, loss_prob: float = 0.0
    ) -> None:
        """De-rate the a–b link's bandwidth by *derate* (>= 1) and make it
        drop messages with *loss_prob* (each drop costs one retransmit)."""
        if derate < 1.0:
            raise ValueError(f"derate must be >= 1, got {derate}")
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1), got {loss_prob}")
        self.degraded[self._edge_key(a, b)] = (float(derate), float(loss_prob))
        self._dirty()

    def fail_node(self, node: int) -> None:
        """Network-isolate *node* (its switch/NIC died: every incident
        link is down; the node itself may keep computing)."""
        self.topology._check_node(node)
        self.failed_nodes.add(int(node))
        self._dirty()

    def repair_node(self, node: int) -> None:
        self.topology._check_node(node)
        self.failed_nodes.discard(int(node))
        self._dirty()

    def reset(self) -> None:
        """Back to a fully healthy network (job requeued onto a repaired
        allocation, or start of a fresh run)."""
        self.failed_links.clear()
        self.failed_nodes.clear()
        self.degraded.clear()
        self._dirty()

    # -- routing ------------------------------------------------------------------

    def _baseline_components(self) -> dict[int, int]:
        if self._baseline_comp is None:
            comp: dict[int, int] = {}
            for i, members in enumerate(nx.connected_components(self._graph)):
                for n in members:
                    comp[n] = i
            self._baseline_comp = comp
        return self._baseline_comp

    def baseline_connected(self, a: int, b: int) -> bool:
        """True when the *healthy* endpoint graph connects *a* and *b*
        by neighbour edges.

        Hierarchical topologies (fat tree) route other pairs through
        internal core switches the endpoint graph does not carry; the
        overlay cannot track those routes per-edge, so such pairs are
        never reported partitioned — they are priced with the
        fabric-wide :meth:`aggregate_penalty` instead.
        """
        self.topology._check_node(a)
        self.topology._check_node(b)
        comp = self._baseline_components()
        return comp[a] == comp[b]

    def _surviving_graph(self) -> nx.Graph:
        if self._surviving is None:
            self._surviving = nx.restricted_view(
                self._graph,
                nodes=list(self.failed_nodes),
                edges=[tuple(e) for e in self.failed_links],
            )
        return self._surviving

    def route(self, a: int, b: int) -> Optional[list[int]]:
        """Endpoint sequence of the surviving min-hop route, or None when
        *a* and *b* are partitioned (or an endpoint is isolated)."""
        self.topology._check_node(a)
        self.topology._check_node(b)
        key = (a, b) if a <= b else (b, a)
        if key in self._route_cache:
            path = self._route_cache[key]
        else:
            try:
                path = nx.shortest_path(
                    self._surviving_graph(), key[0], key[1], weight="weight"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                path = None
            self._route_cache[key] = path
        if path is None or key == (a, b):
            return path
        return list(reversed(path))

    def hop_count(self, a: int, b: int) -> Optional[int]:
        """Hops along the surviving route (None when partitioned)."""
        q = self.route_quality(a, b)
        return None if q is None else q[0]

    def route_quality(
        self, a: int, b: int
    ) -> Optional[tuple[int, float, float]]:
        """``(hops, worst_derate, combined_loss)`` of the surviving a→b
        route, or None when the pair is partitioned.

        Hops sum the healthy hop-count weights of the traversed edges, so
        a detour is priced in the same unit the structural topology uses.
        The de-rate is the worst factor along the route (the bottleneck
        link bounds throughput); losses combine as independent drops.
        """
        path = self.route(a, b)
        if path is None:
            return None
        hops = 0
        derate = 1.0
        survive = 1.0
        for u, v in zip(path, path[1:]):
            hops += self._graph[u][v].get("weight", 1)
            deg = self.degraded.get(frozenset((u, v)))
            if deg is not None:
                derate = max(derate, deg[0])
                survive *= 1.0 - deg[1]
        return hops, derate, 1.0 - survive

    def is_partitioned(self, a: int, b: int) -> bool:
        """True when *a* and *b* were reachable on the healthy fabric
        and no surviving route connects them now."""
        if a == b:
            return int(a) in self.failed_nodes
        if int(a) in self.failed_nodes or int(b) in self.failed_nodes:
            return True
        if not self.baseline_connected(a, b):
            return False  # core-routed pair: not tracked per-edge
        return self.route(a, b) is None

    def group_partitioned(self, nodes: Iterable[int]) -> bool:
        """True when the node group cannot rendezvous: some member is
        isolated, or members that shared a healthy component have been
        split across surviving components."""
        members = sorted(set(int(n) for n in nodes))
        if not members:
            return False
        if any(n in self.failed_nodes for n in members):
            return True
        if len(members) == 1:
            return False
        baseline = self._baseline_components()
        by_comp: dict[int, list[int]] = {}
        for n in members:
            by_comp.setdefault(baseline[n], []).append(n)
        g = self._surviving_graph()
        for comp_members in by_comp.values():
            if len(comp_members) < 2:
                continue
            component = nx.node_connected_component(g, comp_members[0])
            if any(n not in component for n in comp_members[1:]):
                return True
        return False

    # -- aggregate penalty ---------------------------------------------------------

    def aggregate_penalty(self) -> tuple[float, float, float]:
        """``(hop_stretch, worst_derate, worst_loss)`` summarising the
        whole fabric for collective pricing.

        Collectives touch routes all over the machine, so they are priced
        with a fabric-wide expectation instead of per-pair routing: each
        out-of-service link detours the routes crossing it by ~2 extra
        hops, giving ``stretch = 1 + 2·failed/links`` (links removed by
        isolated endpoints count as failed); the worst active de-rate and
        loss bound the bandwidth term.  Cached until the next mutation.
        """
        if self._penalty is None:
            out = len(self.failed_links)
            for n in self.failed_nodes:
                for peer in self._graph[n]:
                    if frozenset((n, peer)) not in self.failed_links:
                        out += 1
            stretch = 1.0 + (2.0 * out / self.nlinks if self.nlinks else 0.0)
            derate = max((d for d, _ in self.degraded.values()), default=1.0)
            loss = max((l for _, l in self.degraded.values()), default=0.0)
            self._penalty = (stretch, derate, loss)
        return self._penalty

    # -- pickling (snapshot/resume) -------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Caches are views into the graph and rebuild deterministically.
        state["_route_cache"] = {}
        state["_surviving"] = None
        state["_penalty"] = None
        state["_baseline_comp"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkHealth(failed_links={len(self.failed_links)}, "
            f"failed_nodes={sorted(self.failed_nodes)}, "
            f"degraded={len(self.degraded)})"
        )
