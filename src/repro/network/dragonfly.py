"""Dragonfly topology, for notional architectural DSE.

The Co-Design phase's architectural DSE swaps interconnects: *"by
modifying and extending the ArchBEO simulation parameters (e.g., network
bandwidths, latencies, or topology) ... it becomes possible to perform
architectural DSE, including DSE of notional systems."*  A dragonfly is
the natural notional alternative to Quartz's fat tree (it is what Slingshot
machines use).

Structure: ``num_groups`` all-to-all-connected groups, each with
``routers_per_group`` all-to-all-connected routers, each serving
``nodes_per_router`` nodes.  Minimal routing gives hop counts:

* same router: 2 (node → router → node),
* same group:  3 (router → router),
* other group: 5 with a direct group-to-group link
  (router → gateway → remote gateway → router), which minimal routing
  always has in a canonical dragonfly.
"""

from __future__ import annotations

import math

from repro.network.topology import Topology


class Dragonfly(Topology):
    """A canonical three-level dragonfly.

    Parameters
    ----------
    num_nodes:
        Endpoints; the router/group structure is sized to hold them.
    nodes_per_router:
        Endpoints per router.
    routers_per_group:
        Routers per group (intra-group all-to-all).
    """

    def __init__(
        self,
        num_nodes: int,
        nodes_per_router: int = 16,
        routers_per_group: int = 16,
    ) -> None:
        super().__init__(num_nodes)
        if nodes_per_router < 1 or routers_per_group < 1:
            raise ValueError("router sizes must be >= 1")
        self.nodes_per_router = int(nodes_per_router)
        self.routers_per_group = int(routers_per_group)
        self.nodes_per_group = self.nodes_per_router * self.routers_per_group
        self.num_routers = math.ceil(num_nodes / nodes_per_router)
        self.num_groups = math.ceil(self.num_routers / routers_per_group)

    def router_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_router

    def group_of(self, node: int) -> int:
        return self.router_of(node) // self.routers_per_group

    def hop_count(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return 0
        if self.router_of(a) == self.router_of(b):
            return 2
        if self.group_of(a) == self.group_of(b):
            return 3
        return 5

    def neighbors(self, node: int) -> list[int]:
        """Endpoints on the same router (minimum-distance peers)."""
        self._check_node(node)
        r = self.router_of(node)
        lo = r * self.nodes_per_router
        hi = min(lo + self.nodes_per_router, self.num_nodes)
        return [n for n in range(lo, hi) if n != node]

    def diameter(self) -> int:
        if self.num_groups > 1:
            return 5
        if self.num_routers > 1:
            return 3
        return 2 if self.num_nodes > 1 else 0

    @property
    def oversubscription(self) -> float:
        """Global-link taper: node bandwidth per group vs global links.

        A canonical dragonfly group has ``routers_per_group`` global links
        (one per router, to distinct groups) carrying the traffic of
        ``nodes_per_group`` nodes.
        """
        return self.nodes_per_group / max(self.routers_per_group, 1)
