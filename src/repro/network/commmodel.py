"""Communication cost models (LogGP plus simple collectives).

The LogGP family models a point-to-point message as

    t = L·hops + 2·o + G·bytes

with ``L`` per-hop latency, ``o`` per-end software overhead, and ``G``
time per byte (inverse bandwidth).  An optional contention factor de-rates
bandwidth when a route crosses an oversubscribed stage (fat-tree uplinks).

Collectives are modeled as logarithmic-stage algorithms over the
point-to-point primitive — the standard coarse-grained treatment, and
exactly the granularity BE-SST needs for coordinated checkpointing costs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.network.topology import Topology


class LogGPModel:
    """Point-to-point message timing on a topology.

    Parameters
    ----------
    topology:
        Supplies hop counts and (for fat trees) oversubscription.
    latency_per_hop:
        Seconds per link traversal (``L``).
    overhead:
        Per-endpoint software overhead in seconds (``o``), counted twice.
    bytes_per_second:
        Link bandwidth (``1/G``).
    contention_factor:
        Extra de-rating multiplier (>1 slows transfers) applied when a
        route leaves the source's minimal neighbourhood (e.g. crosses the
        fat-tree core).  Defaults to the topology's oversubscription for
        :class:`~repro.network.fattree.TwoStageFatTree`, else 1.
    """

    def __init__(
        self,
        topology: Topology,
        latency_per_hop: float = 100e-9,
        overhead: float = 300e-9,
        bytes_per_second: float = 12.5e9,
        contention_factor: Optional[float] = None,
    ) -> None:
        if latency_per_hop < 0 or overhead < 0:
            raise ValueError("latencies must be non-negative")
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        self.topology = topology
        self.L = float(latency_per_hop)
        self.o = float(overhead)
        self.G = 1.0 / float(bytes_per_second)
        if contention_factor is None:
            contention_factor = getattr(topology, "oversubscription", 1.0)
        if contention_factor < 1.0:
            raise ValueError("contention_factor must be >= 1")
        self.contention_factor = float(contention_factor)

    def _derate(self, src: int, dst: int) -> float:
        """Bandwidth de-rating for the src→dst route."""
        hops = self.topology.hop_count(src, dst)
        # Routes beyond the minimal 2-hop neighbourhood cross a shared
        # stage and see oversubscription under load.
        return self.contention_factor if hops > 2 else 1.0

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds to move *nbytes* from node *src* to node *dst*."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if src == dst:
            # Intra-node copy: overhead plus memcpy at ~10x network rate.
            return self.o + self.G * nbytes / 10.0
        hops = self.topology.hop_count(src, dst)
        return self.L * hops + 2 * self.o + self.G * nbytes * self._derate(src, dst)

    def neighbor_time(self, nbytes: int) -> float:
        """Typical minimal-distance (2-hop) transfer time."""
        return self.L * 2 + 2 * self.o + self.G * nbytes

    def far_time(self, nbytes: int) -> float:
        """Typical maximal-distance transfer time (crosses the core)."""
        d = self.topology.diameter()
        return self.L * d + 2 * self.o + self.G * nbytes * self.contention_factor


class CollectiveCostModel:
    """Logarithmic-stage collective costs over a :class:`LogGPModel`."""

    def __init__(self, p2p: LogGPModel) -> None:
        self.p2p = p2p

    def _stages(self, nranks: int) -> int:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return max(1, math.ceil(math.log2(nranks))) if nranks > 1 else 0

    def barrier(self, nranks: int) -> float:
        """Dissemination barrier: ceil(log2 p) rounds of empty messages."""
        return self._stages(nranks) * self.p2p.far_time(0)

    def broadcast(self, nranks: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        return self._stages(nranks) * self.p2p.far_time(nbytes)

    def reduce(self, nranks: int, nbytes: int, op_time_per_byte: float = 0.0) -> float:
        """Binomial-tree reduction with optional per-byte compute."""
        s = self._stages(nranks)
        return s * (self.p2p.far_time(nbytes) + op_time_per_byte * nbytes)

    def allreduce(self, nranks: int, nbytes: int, op_time_per_byte: float = 0.0) -> float:
        """Reduce + broadcast (the classic 2·log2 p construction)."""
        return self.reduce(nranks, nbytes, op_time_per_byte) + self.broadcast(
            nranks, nbytes
        )

    def gather(self, nranks: int, nbytes_per_rank: int) -> float:
        """Linear gather bounded by the root's ingest bandwidth."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nranks == 1:
            return 0.0
        return self.p2p.far_time(nbytes_per_rank * (nranks - 1))

    def alltoall(self, nranks: int, nbytes_per_pair: int) -> float:
        """Pairwise-exchange all-to-all: p-1 rounds."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return (nranks - 1) * self.p2p.far_time(nbytes_per_pair)
