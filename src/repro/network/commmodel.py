"""Communication cost models (LogGP plus simple collectives).

The LogGP family models a point-to-point message as

    t = L·hops + 2·o + G·bytes

with ``L`` per-hop latency, ``o`` per-end software overhead, and ``G``
time per byte (inverse bandwidth).  An optional contention factor de-rates
bandwidth when a route crosses an oversubscribed stage (fat-tree uplinks).

Collectives are modeled as logarithmic-stage algorithms over the
point-to-point primitive — the standard coarse-grained treatment, and
exactly the granularity BE-SST needs for coordinated checkpointing costs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.network.health import NetworkHealth, NetworkPartitionedError
from repro.network.topology import Topology


class LogGPModel:
    """Point-to-point message timing on a topology.

    Parameters
    ----------
    topology:
        Supplies hop counts and (for fat trees) oversubscription.
    latency_per_hop:
        Seconds per link traversal (``L``).
    overhead:
        Per-endpoint software overhead in seconds (``o``), counted twice.
    bytes_per_second:
        Link bandwidth (``1/G``).
    contention_factor:
        Extra de-rating multiplier (>1 slows transfers) applied when the
        route actually used runs beyond the minimal 2-hop neighbourhood
        (e.g. crosses the fat-tree core — or detours around a failed
        link).  Defaults to the topology's oversubscription for
        :class:`~repro.network.fattree.TwoStageFatTree`, else 1.
    retransmit_timeout:
        Loss-detection timeout charged per expected retransmission when
        a route crosses a lossy (degraded) link.

    When the topology carries an *unhealthy* fault overlay
    (:meth:`Topology.health`), point-to-point messages are priced over
    the surviving route — hop inflation on reroute, the worst de-rated
    ``G`` along the route, and timeout + retransmit delay on lossy links
    — and :class:`NetworkPartitionedError` is raised for unreachable
    pairs.  ``stats`` counts reroutes (messages priced over a detour)
    and expected retransmissions; both stay untouched on the healthy
    path.
    """

    def __init__(
        self,
        topology: Topology,
        latency_per_hop: float = 100e-9,
        overhead: float = 300e-9,
        bytes_per_second: float = 12.5e9,
        contention_factor: Optional[float] = None,
        retransmit_timeout: float = 50e-6,
    ) -> None:
        if latency_per_hop < 0 or overhead < 0:
            raise ValueError("latencies must be non-negative")
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if retransmit_timeout < 0:
            raise ValueError(
                f"retransmit_timeout must be >= 0, got {retransmit_timeout}"
            )
        self.topology = topology
        self.L = float(latency_per_hop)
        self.o = float(overhead)
        self.G = 1.0 / float(bytes_per_second)
        if contention_factor is None:
            contention_factor = getattr(topology, "oversubscription", 1.0)
        if contention_factor < 1.0:
            raise ValueError(
                f"contention_factor must be >= 1, got {contention_factor}"
            )
        self.contention_factor = float(contention_factor)
        self.retransmit_timeout = float(retransmit_timeout)
        #: fault-path accounting: "reroutes" (messages priced over a
        #: detour) and "retransmits" (expected retransmissions on lossy
        #: routes); zero-cost while the network is healthy
        self.stats: dict[str, float] = {"reroutes": 0.0, "retransmits": 0.0}
        self._diameter: Optional[int] = None

    def _contention(self, hops: int) -> float:
        """Bandwidth de-rating for a route of *hops* link traversals.

        Computed from the route actually used: routes beyond the minimal
        2-hop neighbourhood cross a shared stage and see oversubscription
        under load — including healthy-minimal routes inflated past two
        hops by a reroute around a failure.
        """
        return self.contention_factor if hops > 2 else 1.0

    def _overlay(self) -> Optional[NetworkHealth]:
        """The topology's fault overlay, or None when pricing can take
        the (unchanged) healthy fast path."""
        h = self.topology._health
        if h is None or h.healthy:
            return None
        return h

    def _lossy(self, t: float, loss: float) -> float:
        """Expected delivery time of a *t*-second message over a route
        dropping it with probability *loss* (geometric retries, one
        timeout per retry)."""
        if loss <= 0.0:
            return t
        tries = 1.0 / (1.0 - loss)
        self.stats["retransmits"] += tries - 1.0
        return t * tries + (tries - 1.0) * self.retransmit_timeout

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds to move *nbytes* from node *src* to node *dst*.

        Raises :class:`NetworkPartitionedError` when the fault overlay
        has severed every src→dst route.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if src == dst:
            # Intra-node copy: overhead plus memcpy at ~10x network rate.
            return self.o + self.G * nbytes / 10.0
        h = self._overlay()
        if h is None:
            hops = self.topology.hop_count(src, dst)
            return (
                self.L * hops
                + 2 * self.o
                + self.G * nbytes * self._contention(hops)
            )
        quality = h.route_quality(src, dst)
        if quality is None:
            if h.baseline_connected(src, dst) or h.is_partitioned(src, dst):
                raise NetworkPartitionedError(
                    f"no surviving route from node {src} to node {dst} "
                    f"({len(h.failed_links)} link(s) and "
                    f"{len(h.failed_nodes)} endpoint(s) down)"
                )
            # Core-routed pair (fat tree cross-switch): the endpoint
            # graph carries no per-edge route to de-rate, so price the
            # healthy formula under the fabric-wide penalty.
            stretch, derate, loss = h.aggregate_penalty()
            hops = self.topology.hop_count(src, dst)
            t = (
                self.L * hops * stretch
                + 2 * self.o
                + self.G * nbytes * self._contention(hops) * derate
            )
            return self._lossy(t, loss)
        hops, derate, loss = quality
        if hops != self.topology.hop_count(src, dst):
            self.stats["reroutes"] += 1.0
        t = (
            self.L * hops
            + 2 * self.o
            + self.G * nbytes * self._contention(hops) * derate
        )
        return self._lossy(t, loss)

    def p2p_penalty(self, src: int, dst: int, nbytes: int = 1 << 20) -> float:
        """Faulty/healthy time ratio for one src→dst transfer — the
        multiplier degraded-network checkpoint traffic pays."""
        if src == dst:
            return 1.0
        hops = self.topology.hop_count(src, dst)
        healthy = (
            self.L * hops
            + 2 * self.o
            + self.G * nbytes * self._contention(hops)
        )
        if healthy <= 0.0:
            return 1.0
        return self.p2p_time(src, dst, nbytes) / healthy

    def neighbor_time(self, nbytes: int) -> float:
        """Typical minimal-distance (2-hop) transfer time."""
        h = self._overlay()
        if h is None:
            return self.L * 2 + 2 * self.o + self.G * nbytes
        stretch, derate, loss = h.aggregate_penalty()
        t = self.L * 2 * stretch + 2 * self.o + self.G * nbytes * derate
        return self._lossy(t, loss)

    def far_time(self, nbytes: int) -> float:
        """Typical maximal-distance transfer time (crosses the core)."""
        if self._diameter is None:
            self._diameter = self.topology.diameter()
        d = self._diameter
        h = self._overlay()
        if h is None:
            return (
                self.L * d + 2 * self.o + self.G * nbytes * self.contention_factor
            )
        # Collectives touch routes machine-wide: price them with the
        # overlay's fabric-wide expectation (hop stretch from detours,
        # worst active de-rate/loss) instead of per-pair routing.
        stretch, derate, loss = h.aggregate_penalty()
        t = (
            self.L * d * stretch
            + 2 * self.o
            + self.G * nbytes * self.contention_factor * derate
        )
        return self._lossy(t, loss)


class CollectiveCostModel:
    """Logarithmic-stage collective costs over a :class:`LogGPModel`."""

    def __init__(self, p2p: LogGPModel) -> None:
        self.p2p = p2p

    def _stages(self, nranks: int) -> int:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return max(1, math.ceil(math.log2(nranks))) if nranks > 1 else 0

    def barrier(self, nranks: int) -> float:
        """Dissemination barrier: ceil(log2 p) rounds of empty messages."""
        return self._stages(nranks) * self.p2p.far_time(0)

    def broadcast(self, nranks: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        return self._stages(nranks) * self.p2p.far_time(nbytes)

    def reduce(self, nranks: int, nbytes: int, op_time_per_byte: float = 0.0) -> float:
        """Binomial-tree reduction with optional per-byte compute."""
        s = self._stages(nranks)
        return s * (self.p2p.far_time(nbytes) + op_time_per_byte * nbytes)

    def allreduce(self, nranks: int, nbytes: int, op_time_per_byte: float = 0.0) -> float:
        """Reduce + broadcast (the classic 2·log2 p construction)."""
        return self.reduce(nranks, nbytes, op_time_per_byte) + self.broadcast(
            nranks, nbytes
        )

    def gather(self, nranks: int, nbytes_per_rank: int) -> float:
        """Linear gather bounded by the root's ingest bandwidth."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nranks == 1:
            return 0.0
        return self.p2p.far_time(nbytes_per_rank * (nranks - 1))

    def alltoall(self, nranks: int, nbytes_per_pair: int) -> float:
        """Pairwise-exchange all-to-all: p-1 rounds."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return (nranks - 1) * self.p2p.far_time(nbytes_per_pair)
