"""Interconnect topologies and communication cost models.

The case-study machines need their networks modeled: Quartz uses a
two-stage bidirectional fat tree (Omni-Path); Vulcan (BlueGene/Q) a
five-dimensional torus.  The BE layer and the virtual testbed consume

* a :class:`~repro.network.topology.Topology` for hop counts / paths, and
* a :class:`~repro.network.commmodel.LogGPModel` for point-to-point and
  collective costs parameterised on those hop counts.
"""

from repro.network.topology import Topology, FullyConnected, NodeRangeError
from repro.network.fattree import TwoStageFatTree
from repro.network.torus import Torus
from repro.network.health import NetworkHealth, NetworkPartitionedError, link_count
from repro.network.commmodel import LogGPModel, CollectiveCostModel

__all__ = [
    "Topology",
    "FullyConnected",
    "TwoStageFatTree",
    "Torus",
    "NodeRangeError",
    "NetworkHealth",
    "NetworkPartitionedError",
    "link_count",
    "LogGPModel",
    "CollectiveCostModel",
]
