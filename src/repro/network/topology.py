"""Topology interface and trivial topologies.

A topology answers structural questions — how many hops between two
nodes, who are a node's neighbours — leaving time/cost to the
communication models layered on top.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.health import NetworkHealth


class NodeRangeError(IndexError, ValueError):
    """An endpoint id outside ``[0, num_nodes)`` was passed to a topology.

    Subclasses both :class:`IndexError` (the historical contract of
    ``hop_count``/``neighbors``) and :class:`ValueError` so either
    expectation holds; the message always names the offending id and the
    valid range.
    """


class Topology(abc.ABC):
    """Abstract interconnect topology over ``num_nodes`` endpoints.

    Node endpoints are integers ``0..num_nodes-1``.  Switches (if any) are
    internal and only visible through hop counts and the exported graph.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        #: lazily created fault overlay; None while the network is
        #: untouched, so fault-free pricing stays a single attribute check
        self._health: "NetworkHealth | None" = None

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeRangeError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    @abc.abstractmethod
    def hop_count(self, a: int, b: int) -> int:
        """Number of link traversals on the route from *a* to *b* (0 if
        ``a == b``)."""

    @abc.abstractmethod
    def neighbors(self, node: int) -> list[int]:
        """Directly adjacent endpoint nodes (one switch/link away at
        minimum distance)."""

    def diameter(self) -> int:
        """Maximum hop count over all node pairs (may be O(n^2))."""
        return max(
            self.hop_count(a, b)
            for a in range(self.num_nodes)
            for b in range(self.num_nodes)
        )

    def average_hops(self, pairs: Iterable[tuple[int, int]]) -> float:
        pairs = list(pairs)
        if not pairs:
            raise ValueError("no pairs given")
        return sum(self.hop_count(a, b) for a, b in pairs) / len(pairs)

    def to_networkx(self) -> nx.Graph:
        """Endpoint-level graph with ``weight`` = hop count, for analysis
        and partitioning.  Only includes neighbour edges."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for a in range(self.num_nodes):
            for b in self.neighbors(a):
                g.add_edge(a, b, weight=self.hop_count(a, b))
        return g

    # -- fault overlay ---------------------------------------------------------

    def health(self) -> "NetworkHealth":
        """The mutable fault overlay, created on first use.

        The structure itself stays immutable; failures, degradations and
        repairs live in the overlay and are consumed by the communication
        model (reroute pricing) and the simulator (partition handling).
        """
        if self._health is None:
            from repro.network.health import NetworkHealth

            self._health = NetworkHealth(self)
        return self._health

    # Convenience delegations so callers can mutate health directly on
    # the topology (`topo.fail_link(a, b)`).

    def fail_link(self, a: int, b: int) -> None:
        self.health().fail_link(a, b)

    def repair_link(self, a: int, b: int) -> None:
        self.health().repair_link(a, b)

    def degrade_link(
        self, a: int, b: int, derate: float = 2.0, loss_prob: float = 0.0
    ) -> None:
        self.health().degrade_link(a, b, derate=derate, loss_prob=loss_prob)

    def fail_node(self, node: int) -> None:
        self.health().fail_node(node)

    def repair_node(self, node: int) -> None:
        self.health().repair_node(node)

    def is_partitioned(self, a: int, b: int) -> bool:
        """True when the fault overlay has severed every a–b route
        (always False while no overlay exists)."""
        if self._health is None:
            self._check_node(a)
            self._check_node(b)
            return False
        return self._health.is_partitioned(a, b)


class FullyConnected(Topology):
    """Every node one switch away from every other (crossbar).

    Useful as a neutral baseline and for small unit tests.
    """

    def hop_count(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return 0 if a == b else 2

    def neighbors(self, node: int) -> list[int]:
        self._check_node(node)
        return [n for n in range(self.num_nodes) if n != node]
