"""Two-stage bidirectional fat tree (Quartz's Omni-Path fabric).

Stage 1 is a row of edge switches, each serving ``nodes_per_edge`` compute
nodes; stage 2 is a row of core switches to which every edge switch
uplinks.  Routes are:

* same node: 0 hops,
* same edge switch: node → edge → node = 2 hops,
* different edge switches: node → edge → core → edge → node = 4 hops.

Contention is summarised by the uplink oversubscription ratio
(``nodes_per_edge / uplinks_per_edge``), consumed by the communication
model as a bandwidth de-rating factor.
"""

from __future__ import annotations

import math

from repro.network.topology import Topology


class TwoStageFatTree(Topology):
    """A two-level fat tree.

    Parameters
    ----------
    num_nodes:
        Total compute nodes.
    nodes_per_edge:
        Down-links per edge switch (Omni-Path edge switches on Quartz
        serve 32 nodes of their 48 ports).
    uplinks_per_edge:
        Up-links from each edge switch to the core stage.
    num_core:
        Core switches; defaults to ``uplinks_per_edge`` (full bisection at
        stage 2).
    """

    def __init__(
        self,
        num_nodes: int,
        nodes_per_edge: int = 32,
        uplinks_per_edge: int = 16,
        num_core: int | None = None,
    ) -> None:
        super().__init__(num_nodes)
        if nodes_per_edge < 1 or uplinks_per_edge < 1:
            raise ValueError("switch port counts must be >= 1")
        self.nodes_per_edge = int(nodes_per_edge)
        self.uplinks_per_edge = int(uplinks_per_edge)
        self.num_edge_switches = math.ceil(num_nodes / nodes_per_edge)
        self.num_core = int(num_core) if num_core is not None else uplinks_per_edge

    @property
    def oversubscription(self) -> float:
        """Down-bandwidth / up-bandwidth ratio of each edge switch."""
        return self.nodes_per_edge / self.uplinks_per_edge

    def edge_switch_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.nodes_per_edge

    def hop_count(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return 0
        if self.edge_switch_of(a) == self.edge_switch_of(b):
            return 2
        return 4

    def neighbors(self, node: int) -> list[int]:
        """Nodes sharing this node's edge switch (minimum-distance peers)."""
        self._check_node(node)
        sw = self.edge_switch_of(node)
        lo = sw * self.nodes_per_edge
        hi = min(lo + self.nodes_per_edge, self.num_nodes)
        return [n for n in range(lo, hi) if n != node]

    def diameter(self) -> int:
        return 2 if self.num_edge_switches == 1 else 4

    def path(self, a: int, b: int) -> list[str]:
        """Human-readable route, e.g. ``['n3', 'edge0', 'core*', 'edge2',
        'n70']`` (core stage is ECMP so the core hop is symbolic)."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return [f"n{a}"]
        ea, eb = self.edge_switch_of(a), self.edge_switch_of(b)
        if ea == eb:
            return [f"n{a}", f"edge{ea}", f"n{b}"]
        return [f"n{a}", f"edge{ea}", "core*", f"edge{eb}", f"n{b}"]
