"""CMT-bone: the proxy app of BE-SST's original validation study (Fig. 1).

CMT-bone abstracts CMT-nek (Nek5000-based compressible multiphase
turbulence): per timestep, spectral-element operator evaluations over the
rank's elements plus nearest-neighbour face exchanges.  Two faces again:

* :class:`CMTBoneKernel` — a real, runnable miniature spectral-element
  kernel (per-element derivative-matrix tensor contractions, the
  ``elements * elem_size^4`` work that dominates CMT-bone), used by the
  instrumentation example and as ground truth for the operation-count
  scaling the Vulcan testbed assumes;
* :func:`cmtbone_appbeo` — the abstract instruction stream Fig. 1's DSE
  simulates across (element size, ranks).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.beo import AppBEO
from repro.core.instructions import Collective, Compute, Exchange, Instruction

_BYTES_PER_DOUBLE = 8


class CMTBoneKernel:
    """A miniature spectral-element operator kernel.

    Holds one rank's worth of elements — ``(elements, n, n, n)`` nodal
    values per field — and applies the collocation derivative matrix
    along each axis per timestep (the small dense matrix multiplies that
    dominate Nek-style codes), followed by a light dissipative update so
    repeated steps stay bounded.

    Parameters
    ----------
    elem_size:
        Points per element edge (n).
    elements:
        Elements owned by this rank.
    """

    def __init__(self, elem_size: int, elements: int, seed: int = 0) -> None:
        if elem_size < 2:
            raise ValueError(f"elem_size must be >= 2, got {elem_size}")
        if elements < 1:
            raise ValueError(f"elements must be >= 1, got {elements}")
        self.elem_size = elem_size
        self.elements = elements
        rng = np.random.default_rng(seed)
        n = elem_size
        self.u = rng.standard_normal((elements, n, n, n))
        # Chebyshev-like collocation derivative matrix (skew part keeps the
        # update energy-neutral before dissipation)
        d = rng.standard_normal((n, n)) / np.sqrt(n)
        self.deriv = (d - d.T) / 2.0
        self.cycles = 0

    def gradient(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply the derivative matrix along each tensor axis."""
        du_x = np.einsum("ij,ejkl->eikl", self.deriv, self.u)
        du_y = np.einsum("ij,ekjl->ekil", self.deriv, self.u)
        du_z = np.einsum("ij,eklj->ekli", self.deriv, self.u)
        return du_x, du_y, du_z

    def step(self, dt: float = 1e-3, nu: float = 1e-2) -> float:
        """One explicit update; returns the field's RMS after the step."""
        if dt <= 0 or nu < 0:
            raise ValueError("dt must be > 0 and nu >= 0")
        du_x, du_y, du_z = self.gradient()
        self.u = (1.0 - nu) * self.u + dt * (du_x + du_y + du_z)
        self.cycles += 1
        return float(np.sqrt(np.mean(self.u**2)))

    def run(self, timesteps: int) -> float:
        rms = float(np.sqrt(np.mean(self.u**2)))
        for _ in range(timesteps):
            rms = self.step()
        return rms

    def flops_per_step(self) -> int:
        """Leading-order multiply-adds: 3 axes x elements x n^4 x 2."""
        n = self.elem_size
        return 3 * self.elements * n**4 * 2

    def state_bytes(self) -> int:
        return self.u.nbytes


def cmtbone_state_bytes(elem_size: int, elements_per_rank: int, nfields: int = 5) -> int:
    """Per-rank state: ``nfields`` doubles over ``elements * elem_size^3``
    grid points."""
    if elem_size < 1 or elements_per_rank < 1:
        raise ValueError("elem_size and elements_per_rank must be >= 1")
    return nfields * elements_per_rank * elem_size**3 * _BYTES_PER_DOUBLE


def cmtbone_appbeo(timesteps: int = 1) -> AppBEO:
    """CMT-bone AppBEO over parameters ``elem_size`` (points per element
    edge) and ``elements`` (elements per rank)."""
    if timesteps < 1:
        raise ValueError(f"timesteps must be >= 1, got {timesteps}")

    def builder(rank: int, nranks: int, params: Mapping[str, float]):
        elem_size = int(params["elem_size"])
        elements = int(params["elements"])
        if elem_size < 1 or elements < 1:
            raise ValueError("elem_size and elements must be >= 1")
        face_bytes = elements * elem_size**2 * _BYTES_PER_DOUBLE
        body: list[Instruction] = []
        for _ in range(timesteps):
            body.append(
                Compute.of(
                    "cmtbone_timestep",
                    elem_size=elem_size,
                    elements=elements,
                    ranks=nranks,
                )
            )
            body.append(Exchange(nbytes=face_bytes, neighbors=6))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO(
        name="cmtbone",
        builder=builder,
        default_params={"elem_size": 5, "elements": 64},
    )
