"""Proxy applications: LULESH, CMT-bone, and a generic iterative solver.

Each application contributes two things:

* an **AppBEO builder** — the abstract-instruction stream the BE-SST
  simulator executes (timestep kernels, halo exchanges, dt reductions,
  and — with an FT scenario — checkpoint instructions), and
* where useful, a **real miniature kernel**
  (:class:`~repro.apps.lulesh.MiniLulesh` is a runnable Sedov-blast
  hydro solver) that grounds checkpoint payload sizes and gives the
  instrumentation example something real to time.
"""

from repro.apps.lulesh import (
    MiniLulesh,
    lulesh_appbeo,
    lulesh_state_bytes,
    lulesh_halo_bytes,
    validate_cube_ranks,
    LULESH_FIELDS,
)
from repro.apps.cmtbone import cmtbone_appbeo, cmtbone_state_bytes
from repro.apps.iterative import iterative_solver_appbeo

__all__ = [
    "MiniLulesh",
    "lulesh_appbeo",
    "lulesh_state_bytes",
    "lulesh_halo_bytes",
    "validate_cube_ranks",
    "LULESH_FIELDS",
    "cmtbone_appbeo",
    "cmtbone_state_bytes",
    "iterative_solver_appbeo",
]
