"""LULESH: the case-study application.

Two faces of the proxy app live here:

* :class:`MiniLulesh` — a real, runnable miniature explicit
  shock-hydrodynamics solver (Sedov blast on a structured cubic grid,
  NumPy).  It is *not* full LULESH; it reproduces the characteristics the
  MODSIM workflow cares about: per-rank state of several double fields
  over ``epr^3`` elements, a CFL-limited timestep, and a serialisable
  checkpoint payload.  The instrumentation example times this kernel.
* :func:`lulesh_appbeo` — the AppBEO: the abstract instruction stream of
  a LULESH(+FTI) run, with the cube-rank constraint and (per the FT
  extension) checkpoint instructions injected by the FT scenario.
"""

from __future__ import annotations

import io
from typing import Mapping, Optional

import numpy as np

from repro.core.beo import AppBEO
from repro.core.ft import NO_FT, FTScenario
from repro.core.instructions import (
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Instruction,
    Marker,
    Verify,
)

#: double-precision fields checkpointed per element (density, energy,
#: pressure, 3 velocity components) — sets the FTI payload size.
LULESH_FIELDS = 6
_BYTES_PER_DOUBLE = 8
_GAMMA = 1.4


def validate_cube_ranks(nranks: int) -> None:
    """LULESH runs only on perfect-cube rank counts (8, 27, 64, ...)."""
    c = round(nranks ** (1 / 3))
    if c**3 != nranks and (c + 1) ** 3 != nranks and (c - 1) ** 3 != nranks:
        raise ValueError(f"LULESH requires a perfect-cube rank count, got {nranks}")
    for cc in (c - 1, c, c + 1):
        if cc > 0 and cc**3 == nranks:
            return
    raise ValueError(f"LULESH requires a perfect-cube rank count, got {nranks}")


def lulesh_state_bytes(epr: int) -> int:
    """Checkpoint payload of one rank: all fields over ``epr^3`` elements."""
    if epr < 1:
        raise ValueError(f"epr must be >= 1, got {epr}")
    return LULESH_FIELDS * epr**3 * _BYTES_PER_DOUBLE


def lulesh_halo_bytes(epr: int, fields: int = 3) -> int:
    """Per-face halo payload: *fields* doubles over an ``epr^2`` face."""
    if epr < 1:
        raise ValueError(f"epr must be >= 1, got {epr}")
    return fields * epr**2 * _BYTES_PER_DOUBLE


class MiniLulesh:
    """A miniature explicit compressible-hydro solver (Sedov blast).

    One MPI rank's subdomain: a cubic ``epr^3`` cell grid carrying
    density, specific internal energy and velocity, advanced with a
    CFL-limited two-step (pressure-force + advection-free compression)
    update and linear artificial viscosity.  Physics is intentionally
    minimal but honest: energy is deposited at the corner, a shock
    expands, and the solver remains positive and stable for hundreds of
    steps.

    Parameters
    ----------
    epr:
        Elements (cells) per edge of this rank's cubic subdomain — the
        case study's problem-size parameter.
    rho0 / e0:
        Background density and deposited blast energy.
    """

    def __init__(self, epr: int, rho0: float = 1.0, e0: float = 1.0, dx: float = 1.0):
        if epr < 2:
            raise ValueError(f"MiniLulesh needs epr >= 2, got {epr}")
        if rho0 <= 0 or e0 <= 0 or dx <= 0:
            raise ValueError("rho0, e0 and dx must be positive")
        self.epr = epr
        self.dx = float(dx)
        shape = (epr, epr, epr)
        self.rho = np.full(shape, rho0)
        self.e = np.full(shape, 1e-6)
        self.u = np.zeros((3,) + shape)
        # Sedov initialisation: blast energy in the origin cell.
        self.e[0, 0, 0] = e0 / (rho0 * self.dx**3)
        self.t = 0.0
        self.cycles = 0

    # -- physics --------------------------------------------------------------

    @property
    def pressure(self) -> np.ndarray:
        return (_GAMMA - 1.0) * self.rho * self.e

    def sound_speed(self) -> np.ndarray:
        return np.sqrt(_GAMMA * self.pressure / self.rho)

    def compute_dt(self, cfl: float = 0.25) -> float:
        """CFL-limited timestep (the quantity LULESH allreduces)."""
        wave = self.sound_speed() + np.abs(self.u).max(axis=0)
        return float(cfl * self.dx / wave.max())

    def _grad(self, f: np.ndarray, axis: int) -> np.ndarray:
        return np.gradient(f, self.dx, axis=axis)

    def step(self, dt: Optional[float] = None) -> float:
        """Advance one timestep; returns the dt used."""
        if dt is None:
            dt = self.compute_dt()
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        p = self.pressure
        # artificial viscosity: damp compression shocks
        div_u = sum(self._grad(self.u[i], i) for i in range(3))
        q = np.where(div_u < 0, 1.5 * self.rho * (self.dx * div_u) ** 2, 0.0)
        ptot = p + q
        # momentum update from pressure gradient
        for i in range(3):
            self.u[i] -= dt * self._grad(ptot, i) / self.rho
        # continuity + energy (pdV work)
        div_u = sum(self._grad(self.u[i], i) for i in range(3))
        self.rho = np.maximum(self.rho * (1.0 - dt * div_u), 1e-10)
        self.e = np.maximum(self.e - dt * (ptot / self.rho) * div_u, 1e-12)
        self.t += dt
        self.cycles += 1
        return dt

    def run(self, timesteps: int) -> float:
        """Advance *timesteps* cycles; returns final simulated time."""
        for _ in range(timesteps):
            self.step()
        return self.t

    # -- diagnostics -------------------------------------------------------------

    def total_internal_energy(self) -> float:
        return float(np.sum(self.rho * self.e) * self.dx**3)

    def total_mass(self) -> float:
        return float(np.sum(self.rho) * self.dx**3)

    def max_velocity(self) -> float:
        return float(np.abs(self.u).max())

    # -- checkpointing ------------------------------------------------------------

    def serialize(self) -> bytes:
        """Checkpoint payload: every field plus time/cycle metadata."""
        buf = io.BytesIO()
        np.savez(
            buf,
            rho=self.rho,
            e=self.e,
            u=self.u,
            meta=np.array([self.t, float(self.cycles), float(self.epr)]),
        )
        return buf.getvalue()

    @classmethod
    def deserialize(cls, blob: bytes) -> "MiniLulesh":
        data = np.load(io.BytesIO(blob))
        meta = data["meta"]
        obj = cls(int(meta[2]))
        obj.rho = data["rho"]
        obj.e = data["e"]
        obj.u = data["u"]
        obj.t = float(meta[0])
        obj.cycles = int(meta[1])
        return obj

    def state_bytes(self) -> int:
        """In-memory size of the checkpointed fields (not the container)."""
        return self.rho.nbytes + self.e.nbytes + self.u.nbytes


def lulesh_appbeo(
    timesteps: int = 200,
    scenario: FTScenario = NO_FT,
    include_halo: bool = True,
) -> AppBEO:
    """The LULESH(+FTI) AppBEO.

    Each timestep executes the instrumented ``lulesh_timestep`` kernel, a
    halo exchange, and the dt allreduce; at checkpoint periods the FT
    scenario's ``fti_l<k>`` checkpoint instructions run (the FT-aware
    extension to the instruction stream, Fig. 3).  With a
    ``verify_period`` on the scenario, the ABFT checksum-verification
    kernel runs at its cadence — *before* any same-timestep checkpoint,
    so a strike caught there never taints the write.

    Instruction parameters carry exactly the knobs that affect
    performance: ``epr`` and ``ranks``.
    """
    if timesteps < 1:
        raise ValueError(f"timesteps must be >= 1, got {timesteps}")

    def builder(rank: int, nranks: int, params: Mapping[str, float]):
        epr = int(params["epr"])
        if epr < 1:
            raise ValueError(f"epr must be >= 1, got {epr}")
        body: list[Instruction] = []
        halo = lulesh_halo_bytes(epr)
        for ts in range(1, timesteps + 1):
            body.append(Compute.of("lulesh_timestep", epr=epr, ranks=nranks))
            if include_halo:
                body.append(Exchange(nbytes=halo, neighbors=6))
            body.append(Collective("allreduce", nbytes=8))  # dt reduction
            if scenario.verification_due(ts):
                body.append(
                    Verify.of(scenario.VERIFY_KERNEL, epr=epr, ranks=nranks)
                )
            for level in scenario.checkpoints_due(ts):
                body.append(Collective("barrier"))  # FTI coordination
                body.append(
                    Checkpoint.of(
                        level, scenario.kernel_for(level), epr=epr, ranks=nranks
                    )
                )
            if ts % 50 == 0:
                body.append(Marker(f"ts{ts}"))
        return body

    return AppBEO(
        name=f"lulesh_{scenario.name}",
        builder=builder,
        default_params={"epr": 10},
        validate_ranks=validate_cube_ranks,
    )
