"""The generic fault-tolerant iterative solver of Fig. 3.

A minimal AppBEO shape — ``solve; exchange; reduce residual; maybe
checkpoint`` per iteration — used by the quickstart example and as the
template the paper's Fig. 3 illustrates: adding checkpoint-restart to an
application changes its control flow, and the AppBEO must reflect the new
abstract instructions.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.beo import AppBEO
from repro.core.ft import NO_FT, FTScenario
from repro.core.instructions import (
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Instruction,
)


def iterative_solver_appbeo(
    iterations: int = 100,
    scenario: FTScenario = NO_FT,
    solve_kernel: str = "solve",
    halo_bytes: int = 8192,
) -> AppBEO:
    """Fig. 3's iterative solver as an AppBEO.

    Parameters are ``n`` (local problem size) and the rank count; the
    checkpoint payload scales with ``n``.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if halo_bytes < 0:
        raise ValueError(f"halo_bytes must be >= 0, got {halo_bytes}")

    def builder(rank: int, nranks: int, params: Mapping[str, float]):
        n = int(params["n"])
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        body: list[Instruction] = []
        for it in range(1, iterations + 1):
            body.append(Compute.of(solve_kernel, n=n, ranks=nranks))
            body.append(Exchange(nbytes=halo_bytes, neighbors=2))
            body.append(Collective("allreduce", nbytes=8))  # residual norm
            for level in scenario.checkpoints_due(it):
                body.append(Collective("barrier"))
                body.append(
                    Checkpoint.of(level, scenario.kernel_for(level), n=n, ranks=nranks)
                )
        return body

    return AppBEO(
        name=f"iterative_{scenario.name}",
        builder=builder,
        default_params={"n": 1000},
    )
