#!/usr/bin/env python
"""Merge pytest-benchmark ``--benchmark-json`` outputs into one summary.

CI jobs run benchmark files in separate pytest invocations, each writing
its own machine-generated JSON.  This folds any number of them into a
single ``BENCH_summary.json`` artifact: one row per benchmark with the
timing stats that matter for regression eyeballing (min/mean/stddev,
rounds) plus each benchmark's ``extra_info`` — which is where the
repo's overhead-bound benchmarks put their measured ratios.

Usage::

    python tools/bench_summary.py /tmp/bench/*.json --out BENCH_summary.json

Stdlib-only by design: the aggregation must run on a bare CI python.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def summarize_file(path: str) -> list[dict]:
    """Rows for one pytest-benchmark JSON file (empty if unreadable)."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_summary: skipping {path}: {exc}", file=sys.stderr)
        return []
    rows = []
    for bench in data.get("benchmarks") or []:
        stats = bench.get("stats") or {}
        rows.append(
            {
                "file": os.path.basename(path),
                "name": bench.get("name", ""),
                "fullname": bench.get("fullname", bench.get("name", "")),
                "min_s": stats.get("min"),
                "mean_s": stats.get("mean"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
                "extra_info": bench.get("extra_info") or {},
            }
        )
    return rows


def build_summary(paths: list[str]) -> dict:
    rows: list[dict] = []
    for path in paths:
        rows.extend(summarize_file(path))
    rows.sort(key=lambda r: (r["fullname"], r["file"]))
    return {
        "schema": "bench-summary/1",
        "sources": [os.path.basename(p) for p in paths],
        "count": len(rows),
        "benchmarks": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge pytest-benchmark JSON outputs into one summary"
    )
    parser.add_argument("inputs", nargs="+", help="pytest-benchmark JSON files")
    parser.add_argument(
        "--out", required=True, help="summary JSON output path"
    )
    args = parser.parse_args(argv)
    # outputs of this very script may glob-match the inputs on a re-run;
    # never fold a summary into itself
    inputs = [p for p in args.inputs if os.path.abspath(p) != os.path.abspath(args.out)]
    summary = build_summary(inputs)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(
        f"bench_summary: {summary['count']} benchmarks from "
        f"{len(inputs)} files -> {args.out}"
    )
    return 0 if summary["count"] or not inputs else 1


if __name__ == "__main__":
    sys.exit(main())
