"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables/figures.  The
case-study benches share one process-wide context (Model Development runs
once); Monte-Carlo budgets are sized so the whole harness finishes in
minutes while preserving every reproduced shape.  Run with ``-s`` to see
the regenerated tables inline.
"""

import pytest

from repro.exps.casestudy import get_context

#: Monte-Carlo replicas used across the harness — keep identical between
#: benches so their simulation caches are shared.
BENCH_REPS = 2


@pytest.fixture(scope="session")
def ctx():
    """The case-study context (benchmark campaign + fitted models)."""
    return get_context(seed=0)


def emit(benchmark, title: str, text: str) -> None:
    """Print a regenerated artifact and attach it to the benchmark record."""
    print(f"\n{text}\n")
    benchmark.extra_info[title] = text
