"""FIG7 — full application runtime prediction, 64 ranks, 200 timesteps."""

import numpy as np

from benchmarks.conftest import BENCH_REPS, emit
from repro.exps.fig7_8 import format_fig7_8, full_system_curves


def test_fig7_full_system_64_ranks(benchmark, ctx):
    curves = benchmark.pedantic(
        lambda: full_system_curves(64, ctx=ctx, reps=BENCH_REPS),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "fig7", format_fig7_8(curves))

    by = {c.scenario: c for c in curves}
    # scenario ordering in both measured and simulated totals
    for field in ("measured_total", "simulated_total_mean"):
        vals = [getattr(by[s], field) for s in ("no_ft", "l1", "l1+l2")]
        assert vals[0] < vals[1] < vals[2]
    # checkpoint marks: 5 at period 40 for L1; 10 for L1+L2
    assert len(by["l1"].checkpoint_marks) == 5
    assert len(by["l1+l2"].checkpoint_marks) == 10
    # system-level accuracy comparable to the paper's ~20%
    assert all(c.percent_error < 35.0 for c in curves)
    # cumulative curves are monotone and end at the total
    for c in curves:
        assert np.all(np.diff(c.simulated_curve) > 0)
        assert np.all(np.diff(c.measured_curve) > 0)
