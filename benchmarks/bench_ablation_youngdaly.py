"""ABL2 — checkpoint period under fault injection vs Young/Daly optimum."""

from benchmarks.conftest import emit
from repro.exps.ablations import format_abl2, youngdaly_ablation


def test_ablation_youngdaly(benchmark, ctx):
    res = benchmark.pedantic(
        lambda: youngdaly_ablation(
            ctx, periods=(5, 10, 20, 40, 80, 160),
            ranks=64, epr=10, timesteps=400, node_mtbf_s=30.0, reps=3,
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "abl2", format_abl2(res))

    periods = [p.period for p in res.points]
    totals = {p.period: p.mean_total for p in res.points}
    # the simulated optimum is interior (the classic U-shape): the two
    # extreme periods are both worse than the best
    best = res.best_period
    assert totals[periods[0]] >= totals[best]
    assert totals[periods[-1]] >= totals[best]
    # Daly's analytic optimum lands within a factor ~4 of the simulated one
    assert res.daly_period_timesteps > 0
    assert 0.25 <= best / max(res.daly_period_timesteps, 1e-9) <= 16.0
