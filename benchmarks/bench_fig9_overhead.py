"""FIG9 — overhead prediction matrix for full-system DSE."""

from benchmarks.conftest import BENCH_REPS, emit
from repro.exps.fig9 import FIG9_EPRS, FIG9_RANKS, format_fig9, overhead_prediction


def test_fig9_overhead_matrix(benchmark, ctx):
    pct = benchmark.pedantic(
        lambda: overhead_prediction(ctx, reps=BENCH_REPS), rounds=1, iterations=1
    )
    emit(benchmark, "fig9", format_fig9(pct))

    import pytest

    for e in FIG9_EPRS:
        # each column is normalised to its own 64-rank no-FT prediction
        assert pct[(e, 64, "no_ft")] == pytest.approx(100.0)
        for r in FIG9_RANKS:
            # FT-level ordering: no FT < L1 < L1+L2
            assert pct[(e, r, "no_ft")] < pct[(e, r, "l1")] < pct[(e, r, "l1+l2")]
        # scale ordering: everything is costlier (relatively) at 1000 ranks
        for s in ("no_ft", "l1", "l1+l2"):
            assert pct[(e, 1000, s)] > pct[(e, 64, s)]
    # the paper's extreme corner: L1+L2 at 1000 ranks and max epr carries
    # several-fold overhead
    assert pct[(25, 1000, "l1+l2")] > 300.0
    # checkpoint overhead grows with problem size at scale
    assert pct[(25, 1000, "l1+l2")] > pct[(10, 1000, "l1+l2")] * 0.9
