"""TAB3 — instance-model MAPE (paper: 6.64% / 16.68% / 14.50%)."""

from benchmarks.conftest import emit
from repro.exps.table3 import format_table3, instance_model_mape


def test_table3_instance_model_mape(benchmark, ctx):
    reports = benchmark.pedantic(
        lambda: instance_model_mape(ctx), rounds=1, iterations=1
    )
    emit(benchmark, "table3", format_table3(reports))

    mapes = {k: r.mape for k, r in reports.items()}
    # accuracy band: "less than 17% for the instance models" — give the
    # synthetic testbed headroom but stay DSE-grade
    assert mapes["lulesh_timestep"] < 15.0
    assert mapes["fti_l1"] < 30.0
    assert mapes["fti_l2"] < 30.0
    # the paper's ordering: the compute kernel models far better than the
    # storage/communication-bound checkpoint kernels
    assert mapes["lulesh_timestep"] < mapes["fti_l1"]
    assert mapes["lulesh_timestep"] < mapes["fti_l2"]
