"""FIG4 — the four fault-assumption cases (incl. the paper's future work).

Case 1: no faults, no FT          (traditional BE-SST)
Case 2: faults, no FT             (restart from scratch)
Case 3: no faults, FT-aware       (this paper's contribution)
Case 4: faults + fault-tolerance  (the paper's future work)
"""

from benchmarks.conftest import emit
from repro.exps.fig4 import fault_assumption_cases, format_fig4


def test_fig4_fault_assumption_cases(benchmark, ctx):
    results = benchmark.pedantic(
        lambda: fault_assumption_cases(
            ctx, ranks=64, epr=10, timesteps=200, ckpt_period=40,
            # enough fault pressure that case 2's restart-from-scratch
            # penalty dominates sampling noise across the replicas
            node_mtbf_s=8.0, recovery_time_s=0.05, reps=5,
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "fig4", format_fig4(results))

    by = {r.case: r for r in results}
    # no-fault cases see no faults
    assert by[1].mean_faults == 0 and by[3].mean_faults == 0
    # Case 3 = Case 1 + checkpoint overhead
    assert by[3].mean_total > by[1].mean_total
    # faults make things worse
    assert by[2].mean_total > by[1].mean_total
    assert by[4].mean_total > by[3].mean_total
    # the headline: checkpointing bounds the damage (Case 4 wastes less
    # and finishes sooner than restart-from-scratch Case 2)
    assert by[2].mean_faults > 0 and by[4].mean_faults > 0
    assert by[4].mean_wasted < by[2].mean_wasted
    assert by[4].mean_total < by[2].mean_total
