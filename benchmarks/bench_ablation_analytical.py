"""ABL3 — related-work analytical baselines vs scale."""

from benchmarks.conftest import emit
from repro.exps.ablations import analytical_baselines, format_abl3
from repro.analytical import optimal_process_count, reliability_aware_gustafson


def test_ablation_analytical_baselines(benchmark):
    rows = benchmark.pedantic(lambda: analytical_baselines(), rounds=1, iterations=1)
    emit(benchmark, "abl3", format_abl3(rows))

    # fault-free Amdahl dominates its FT-aware counterpart everywhere
    for r in rows:
        assert r["amdahl"] >= r["amdahl_ft"] * 0.999

    # the related work's headline: a finite optimal process count exists
    n_opt = optimal_process_count(
        0.001, node_mtbf=30 * 86400, ckpt_cost=600, law="gustafson", n_max=10**7
    )
    assert 1 < n_opt < 10**7
    s_opt = reliability_aware_gustafson(n_opt, 0.001, 30 * 86400, ckpt_cost=600)
    s_past = reliability_aware_gustafson(
        min(n_opt * 32, 10**8), 0.001, 30 * 86400, ckpt_cost=600
    )
    assert s_past < s_opt
