"""SNAPSHOT — overhead of periodic in-simulation checkpointing.

Times the same fault-injected application run with auto-snapshotting
off and on (full simulator state pickled to disk every
``SNAPSHOT_EVERY`` fired events), and asserts the snapshotting run stays
within ``OVERHEAD_BOUND`` of the plain one: self-healing must be cheap
enough to leave enabled on long campaigns.  The plain reference is
re-timed before every snapshotting round (pedantic ``setup``) so slow
allocator/cache drift over the process lifetime hits both sides alike;
min-vs-min is then the standard noise-robust comparison.  The ratio
lands in the benchmark JSON (``extra_info``) so the perf trajectory
captures it.
"""

import shutil
import tempfile
import time

from benchmarks.conftest import emit
from repro.core.campaign import CampaignSpec, build_campaign_simulator
from repro.core.fault_injection import RecoveryPolicy

SPEC = CampaignSpec(node_mtbf_s=30.0, ckpt_period=5, timesteps=2000)
SEED = 0
#: a full-state pickle costs roughly constant time per snapshot, so the
#: cadence (snapshots per unit of simulated work) is what the bound
#: actually constrains; one snapshot across this replica keeps the
#: assertion far from measurement noise while still timing the real
#: capture + persist path
SNAPSHOT_EVERY = 100_000

#: snapshotting / plain wall-time must stay under this
OVERHEAD_BOUND = 1.3


def _run_plain():
    return build_campaign_simulator(SPEC, SEED, RecoveryPolicy()).run()


def _run_snapshotting(directory: str):
    sim = build_campaign_simulator(SPEC, SEED, RecoveryPolicy())
    sim.enable_snapshots(directory, every_events=SNAPSHOT_EVERY, keep=2)
    return sim.run()


def test_snapshot_overhead(benchmark):
    workdir = tempfile.mkdtemp(prefix="repro-snap-bench-")
    plain_times = []

    def timed_plain_setup():
        t0 = time.perf_counter()
        timed_plain_setup.result = _run_plain()
        plain_times.append(time.perf_counter() - t0)
        return (), {}

    try:
        _run_plain()  # warm imports/allocator for both paths
        _run_snapshotting(workdir)
        snap_res = benchmark.pedantic(
            lambda: _run_snapshotting(workdir),
            setup=timed_plain_setup,
            rounds=5,
            iterations=1,
        )
        plain_res = timed_plain_setup.result
        plain_s = min(plain_times)
        snap_s = benchmark.stats.stats.min
        ratio = snap_s / plain_s

        # snapshotting must not perturb the simulation itself
        assert snap_res.total_time == plain_res.total_time
        assert snap_res.events_fired == plain_res.events_fired

        snapshots_taken = plain_res.events_fired // SNAPSHOT_EVERY
        assert snapshots_taken >= 1, "cadence too sparse to measure anything"
        benchmark.extra_info["plain_s"] = plain_s
        benchmark.extra_info["snapshotting_s"] = snap_s
        benchmark.extra_info["overhead_ratio"] = ratio
        benchmark.extra_info["snapshots_taken"] = snapshots_taken
        emit(
            benchmark,
            "snapshot-overhead",
            f"plain: {plain_s:.3f}s  snapshotting: {snap_s:.3f}s  "
            f"ratio: {ratio:.2f}x (bound {OVERHEAD_BOUND}x, "
            f"{snapshots_taken} snapshots @ every {SNAPSHOT_EVERY} events)",
        )
        assert ratio < OVERHEAD_BOUND
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
