"""FIG6 — instance-model validation and prediction vs number of ranks."""

from benchmarks.conftest import emit
from repro.exps.fig5_6 import PREDICT_RANKS, format_fig6, instance_scaling


def test_fig6_scaling_vs_ranks(benchmark, ctx):
    rows = benchmark.pedantic(
        lambda: instance_scaling(ctx), rounds=1, iterations=1
    )
    emit(benchmark, "fig6", format_fig6(rows))

    by = {(r.kernel, r.epr, r.ranks): r for r in rows}
    # checkpointing scales much more strongly with ranks than the
    # (weak-scaling) timestep does — the coordinated-C/R cost the paper
    # attributes to storage and communication
    for k in ("fti_l1", "fti_l2"):
        growth_ckpt = by[(k, 10, 1000)].predicted / by[(k, 10, 8)].predicted
        growth_step = (
            by[("lulesh_timestep", 10, 1000)].predicted
            / by[("lulesh_timestep", 10, 8)].predicted
        )
        assert growth_ckpt > growth_step
    # the prediction region (1331 ranks) extends the trend
    for k in ("lulesh_timestep", "fti_l1", "fti_l2"):
        assert (
            by[(k, 10, PREDICT_RANKS)].predicted
            > by[(k, 10, 512)].predicted * 0.8
        )
        assert by[(k, 10, PREDICT_RANKS)].is_prediction
