"""SUPERVISOR — clean-path overhead of crash-safe execution.

Compares the supervised task scheduler (per-task submit, timeouts,
retry bookkeeping — ``core.supervisor``) against the legacy bare
``ProcessPoolExecutor.map`` harness it replaced, on a fault-free small
grid.  The overhead ratio lands in the benchmark JSON (``extra_info``)
so the perf trajectory captures it, and is asserted to stay within a
bound: crash-safety must stay cheap when nothing crashes.
"""

import time
from concurrent.futures import ProcessPoolExecutor

from benchmarks.conftest import emit
from repro.core.campaign import CampaignSpec, ResilienceCampaign, _run_replica
from repro.core.fault_injection import RecoveryPolicy
from repro.core.montecarlo import derive_seeds

REPS = 8
WORKERS = 2
MTBFS = [8.0, 32.0]
PERIODS = [5]
SPEC_KW = dict(timesteps=40)

#: clean-path supervised / legacy wall-time must stay under this
OVERHEAD_BOUND = 2.0


def _legacy_pool_map(policy: RecoveryPolicy) -> None:
    """The pre-supervisor harness: one bare map per grid point."""
    seeds = derive_seeds(0, REPS)
    for mtbf in MTBFS:
        for period in PERIODS:
            spec = CampaignSpec(node_mtbf_s=mtbf, ckpt_period=period, **SPEC_KW)
            payloads = [(spec, policy, s) for s in seeds]
            with ProcessPoolExecutor(max_workers=WORKERS) as pool:
                list(pool.map(_run_replica, payloads))


def _supervised(policy: RecoveryPolicy):
    camp = ResilienceCampaign(
        reps=REPS, base_seed=0, policy=policy, n_workers=WORKERS
    )
    return camp.run_grid(MTBFS, PERIODS, **SPEC_KW)


def test_supervisor_clean_path_overhead(benchmark):
    policy = RecoveryPolicy()
    _legacy_pool_map(policy)  # warm both paths' pool/import costs
    t0 = time.perf_counter()
    _legacy_pool_map(policy)
    legacy_s = time.perf_counter() - t0

    report = benchmark.pedantic(
        lambda: _supervised(policy), rounds=1, iterations=1
    )
    supervised_s = benchmark.stats.stats.mean
    ratio = supervised_s / legacy_s
    benchmark.extra_info["legacy_pool_map_s"] = legacy_s
    benchmark.extra_info["supervised_s"] = supervised_s
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "supervisor-overhead",
        f"legacy pool.map: {legacy_s:.3f}s  supervised: {supervised_s:.3f}s  "
        f"ratio: {ratio:.2f}x (bound {OVERHEAD_BOUND}x)",
    )

    assert len(report.points) == len(MTBFS) * len(PERIODS)
    assert all(p.replicas_done == REPS for p in report.points)
    assert ratio < OVERHEAD_BOUND
