"""EXT1-3 — extension experiments: all FTI levels, level selection,
architectural DSE (the paper's stated future directions)."""

from benchmarks.conftest import emit
from repro.exps.extensions import (
    all_levels_full_system,
    architectural_dse,
    format_ext1,
    format_ext2,
    format_ext3,
    get_all_levels_context,
    level_selection_sweep,
)


def test_ext1_all_four_levels(benchmark):
    ctx = get_all_levels_context(seed=0)
    rows = benchmark.pedantic(
        lambda: all_levels_full_system(ctx, ranks=64, epr=10, reps=2),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "ext1", format_ext1(rows))

    by = {r.level: r for r in rows}
    # Table I's overhead trend: cost grows L1 -> L2; L3 adds RS encode
    # over L1; all simulate within the exploratory band
    assert by[1].ckpt_instance_cost < by[2].ckpt_instance_cost
    assert by[3].ckpt_instance_cost > by[1].ckpt_instance_cost
    assert all(r.percent_error < 40.0 for r in rows)


def test_ext2_level_selection(benchmark):
    ctx = get_all_levels_context(seed=0)
    rows = benchmark.pedantic(
        lambda: level_selection_sweep(ctx), rounds=1, iterations=1
    )
    emit(benchmark, "ext2", format_ext2(rows))

    best = [r.best_level for r in rows]
    # reliability degrades across the sweep; the optimum never steps down
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))
    assert best[-1] >= 3


def test_ext3_architectural_dse(benchmark):
    ctx = get_all_levels_context(seed=0)
    rows = benchmark.pedantic(
        lambda: architectural_dse(ctx, ranks=64, epr=10, reps=2),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "ext3", format_ext3(rows))

    for arch in ("fat-tree", "dragonfly"):
        mine = {r.scenario: r.total for r in rows if r.architecture == arch}
        assert mine["no_ft"] < mine["l1"] < mine["l1+l2"]
