"""SDC — verification-enabled vs fail-stop-only simulation overhead.

Runs the Fig. 7 workload (64-rank LULESH proxy, 200 timesteps, L1
checkpoints every 40) twice per round under fault injection:

* **fail-stop only** — the seed taxonomy (software/node mix), no
  verification kernels, no SDC bookkeeping on the hot path,
* **SDC-aware** — a mixed taxonomy (SDC + stragglers + bursts alongside
  fail-stop) with ABFT Verify kernels every 10 timesteps and
  checkpoint-write validation enabled.

The min-of-rounds wall-time ratio must stay within the PR's budget: the
extended taxonomy prices extra Verify instructions and latent-strike
bookkeeping, but detection-latency awareness has to be cheap enough to
leave on for every campaign.
"""

import time

from benchmarks.conftest import emit
from repro.apps import lulesh_appbeo
from repro.core import BESSTSimulator, FaultInjector, FaultModel, RecoveryPolicy
from repro.core.ft import scenario_l1
from repro.models import ConstantModel

RANKS = 64
TIMESTEPS = 200
EPR = 10
ROUNDS = 3
VERIFY_PERIOD = 10
NNODES = 32  # 64 ranks / 2 cores per node on Quartz

#: sdc-aware / fail-stop-only wall time (min of rounds) must stay under this
OVERHEAD_BOUND = 1.2

FAILSTOP_MODEL = FaultModel(node_mtbf_s=4000.0, software_fraction=0.6)
MIXED_MODEL = FaultModel(
    node_mtbf_s=4000.0,
    kind_weights={
        "software": 0.3,
        "node": 0.1,
        "sdc": 0.4,
        "straggler": 0.1,
        "burst": 0.1,
    },
    straggler_repair_s=5.0,
    burst_size=2,
)


def _run(ctx, scenario, model, policy) -> float:
    arch = ctx.archbeo
    if "abft_verify" not in arch.models:
        arch.bind("abft_verify", ConstantModel(1e-4))
    app = lulesh_appbeo(timesteps=TIMESTEPS, scenario=scenario)
    sim = BESSTSimulator(
        app,
        arch,
        nranks=RANKS,
        params={"epr": EPR},
        seed=0,
        fault_injector=FaultInjector(model, nnodes=NNODES, seed=7),
        recovery_policy=policy,
    )
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    assert res.completed
    return dt


def _run_failstop(ctx) -> float:
    return _run(
        ctx,
        scenario_l1(40),
        FAILSTOP_MODEL,
        RecoveryPolicy(verify_fail_prob=0.0),
    )


def _run_sdc_aware(ctx) -> float:
    return _run(
        ctx,
        scenario_l1(40).with_verification(VERIFY_PERIOD),
        MIXED_MODEL,
        RecoveryPolicy(verify_fail_prob=0.0, ckpt_validate_prob=0.5),
    )


def test_sdc_overhead_fig7_workload(benchmark, ctx):
    _run_failstop(ctx)  # warm imports, model LUTs, allocator
    _run_sdc_aware(ctx)

    failstop = [_run_failstop(ctx) for _ in range(ROUNDS)]

    def one_round():
        return _run_sdc_aware(ctx)

    benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
    sdc_aware = [_run_sdc_aware(ctx) for _ in range(ROUNDS)]

    # Compare min-of-rounds: the floor is the honest per-event cost,
    # everything above it is scheduler noise.
    ratio = min(sdc_aware) / min(failstop)
    benchmark.extra_info["failstop_s"] = min(failstop)
    benchmark.extra_info["sdc_aware_s"] = min(sdc_aware)
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "sdc-overhead",
        f"fail-stop only: {min(failstop):.3f}s  sdc-aware: "
        f"{min(sdc_aware):.3f}s  ratio: {ratio:.3f}x "
        f"(bound {OVERHEAD_BOUND}x)",
    )
    assert ratio <= OVERHEAD_BOUND
