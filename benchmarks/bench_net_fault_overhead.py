"""Network fault domain — overlay-attached vs bare-topology overhead.

Runs the Fig. 7 workload (64-rank LULESH proxy, 200 timesteps, L1
checkpoints every 40) under fail-stop fault injection twice per round:

* **bare** — the topology carries no health overlay (``_health is
  None``), exactly the pre-network-domain hot path,
* **overlay** — :meth:`Topology.health` has been called, so every
  communication pricing first checks the (healthy) overlay before taking
  the fast path.

No network faults fire in either run: the bench isolates what merely
*carrying* the fault domain costs every simulation.  The min-of-rounds
wall-time ratio must stay within the PR's budget — the healthy path is
one attribute check and must remain indistinguishable from free.
"""

import time

from benchmarks.conftest import emit
from repro.apps import lulesh_appbeo
from repro.core import BESSTSimulator, FaultInjector, FaultModel, RecoveryPolicy

RANKS = 64
TIMESTEPS = 200
EPR = 10
ROUNDS = 3
NNODES = 32  # 64 ranks / 2 cores per node on Quartz

#: overlay-attached / bare wall time (min of rounds) must stay under this
OVERHEAD_BOUND = 1.1

FAILSTOP_MODEL = FaultModel(node_mtbf_s=4000.0, software_fraction=0.6)


def _run(ctx, overlay: bool) -> float:
    from repro.exps.casestudy import CKPT_PERIOD
    from repro.core.ft import scenario_l1

    arch = ctx.archbeo
    if overlay:
        arch.topology.health()  # attach (healthy) fault overlay
    else:
        arch.topology._health = None  # detach: pre-network-domain path
    app = lulesh_appbeo(timesteps=TIMESTEPS, scenario=scenario_l1(CKPT_PERIOD))
    sim = BESSTSimulator(
        app,
        arch,
        nranks=RANKS,
        params={"epr": EPR},
        seed=0,
        fault_injector=FaultInjector(FAILSTOP_MODEL, nnodes=NNODES, seed=7),
        recovery_policy=RecoveryPolicy(verify_fail_prob=0.0),
    )
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    assert res.completed
    return dt


def test_net_overlay_overhead_fig7_workload(benchmark, ctx):
    _run(ctx, overlay=False)  # warm imports, model LUTs, allocator
    _run(ctx, overlay=True)

    bare = [_run(ctx, overlay=False) for _ in range(ROUNDS)]

    def one_round():
        return _run(ctx, overlay=True)

    benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
    with_overlay = [_run(ctx, overlay=True) for _ in range(ROUNDS)]
    ctx.archbeo.topology._health = None  # leave the shared ctx untouched

    # Compare min-of-rounds: the floor is the honest per-event cost,
    # everything above it is scheduler noise.
    ratio = min(with_overlay) / min(bare)
    benchmark.extra_info["bare_s"] = min(bare)
    benchmark.extra_info["overlay_s"] = min(with_overlay)
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "net-overlay-overhead",
        f"bare topology: {min(bare):.3f}s  healthy overlay: "
        f"{min(with_overlay):.3f}s  ratio: {ratio:.3f}x "
        f"(bound {OVERHEAD_BOUND}x)",
    )
    assert ratio <= OVERHEAD_BOUND
