"""ABL4 — sequential vs conservative-parallel DES engine."""

from benchmarks.conftest import emit
from repro.exps.ablations import engine_ablation, format_abl4


def test_ablation_engines(benchmark):
    res = benchmark.pedantic(
        lambda: engine_ablation(n_ring=32, laps=300), rounds=1, iterations=1
    )
    emit(benchmark, "abl4", format_abl4(res))

    # the conservative engine is observationally equivalent
    assert res["parallel_2"]["identical"]
    assert res["parallel_4"]["identical"]
    assert (
        res["sequential"]["events"]
        == res["parallel_2"]["events"]
        == res["parallel_4"]["events"]
    )
    # window machinery actually engaged
    assert res["parallel_4"]["windows"] > 1
