"""TAB4 — full-system simulation MAPE (paper: 20.13% / 17.64% / 14.54%)."""

from benchmarks.conftest import BENCH_REPS, emit
from repro.exps.table4 import format_table4, full_system_mape


def test_table4_full_system_mape(benchmark, ctx):
    reports = benchmark.pedantic(
        lambda: full_system_mape(
            ctx, reps=BENCH_REPS, measured_reps=2
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "table4", format_table4(reports))

    # "a level of accuracy acceptable for initial exploration and pruning
    # of the design space" — the paper sits near 20%; hold each scenario
    # inside the exploratory band
    for name, rep in reports.items():
        assert rep.mape < 40.0, (name, rep.mape)
    # full-system error stays comparable to instance-model error
    # (the paper's insight 1: aggregate error does not blow up)
    assert max(r.mape for r in reports.values()) < 3 * max(
        5.0, min(r.mape for r in reports.values()) * 3
    )
