"""ABL1 — modeling method: interpolation LUT vs symbolic regression."""

from benchmarks.conftest import emit
from repro.exps.ablations import format_abl1, modeling_method_ablation


def test_ablation_modeling_methods(benchmark, ctx):
    table = benchmark.pedantic(
        lambda: modeling_method_ablation(ctx), rounds=1, iterations=1
    )
    emit(benchmark, "abl1", format_abl1(table))

    for kernel, row in table.items():
        # both of the paper's methods reach DSE-grade accuracy on the grid
        assert row["symreg"] < 30.0, kernel
        assert row["lut"] < 30.0, kernel
