"""GUARD — resource-guard-on vs guard-off overhead on the Fig. 7 workload.

Runs the 64-rank LULESH proxy (200 timesteps, L1 checkpoints every 40)
through the supervised durability stack twice per round: bare (task
supervisor + WAL journal, exactly what a campaign pays anyway), and
with the full guard stack armed — the fsfault shim installed with a
zero-probability config (every durable write pays the deterministic
draw, the worst-case hot-path cost) plus a
:class:`~repro.guard.resource.ResourceGuard` polled at supervisor
cadence.  The min-of-rounds ratio lands in ``extra_info`` and is
asserted to stay within the PR's overhead budget: resilience must be
cheap enough to leave on.
"""

import tempfile
import time

from benchmarks.conftest import emit
from repro.apps import lulesh_appbeo
from repro.core import BESSTSimulator
from repro.core.ft import scenario_l1
from repro.core.supervisor import TaskSupervisor, WriteAheadJournal
from repro.guard import fsfault
from repro.guard.fsfault import FsFaultConfig, FsFaultInjector
from repro.guard.resource import ResourceGuard, ResourceLimits
from repro.obs.metrics import MetricsRegistry

RANKS = 64
TIMESTEPS = 200
EPR = 10
ROUNDS = 3

#: guard-on / guard-off wall time (min of rounds) must stay under this
OVERHEAD_BOUND = 1.1

_CTX = None  # stashed for the in-process (n_workers=1) worker fn


def _run_fig7(_payload) -> dict:
    app = lulesh_appbeo(timesteps=TIMESTEPS, scenario=scenario_l1(40))
    sim = BESSTSimulator(
        app, _CTX.archbeo, nranks=RANKS, params={"epr": EPR}, seed=0
    )
    res = sim.run()
    assert res.completed
    return {"total_time": res.total_time}


def _run_once(guard_on: bool) -> float:
    """One supervised Fig. 7 run with WAL journalling; optionally guarded."""
    with tempfile.TemporaryDirectory() as tmp:
        journal = WriteAheadJournal(f"{tmp}/bench.wal", {"bench": "guard"})
        guard = None
        if guard_on:
            # Private registry: the bench must not pollute (or pay for
            # contention on) the process-global one.
            guard = ResourceGuard(
                watch_path=tmp,
                limits=ResourceLimits(),  # 64 MiB floor: never trips here
                poll_interval_s=0.05,
                registry=MetricsRegistry(),
            )
            fsfault.install(FsFaultInjector(FsFaultConfig(seed=0)))
        supervisor = TaskSupervisor(
            _run_fig7,
            n_workers=1,
            on_result=lambda key, result: journal.append(
                {"kind": "result", "key": key, "result": result}
            ),
            guard=guard,
        )
        try:
            t0 = time.perf_counter()
            out = supervisor.run([("fig7", None)])
            dt = time.perf_counter() - t0
        finally:
            if guard_on:
                fsfault.uninstall()
            journal.close()
        assert not out.stats.aborted and len(out.results) == 1
        if guard_on:
            assert guard.polls >= 1 and not guard.paused
    return dt


def test_guard_overhead_fig7_workload(benchmark, ctx):
    global _CTX
    _CTX = ctx
    _run_once(False)  # warm imports, model LUTs, allocator
    _run_once(True)

    bare = [_run_once(False) for _ in range(ROUNDS)]

    def one_round():
        return _run_once(True)

    benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
    guarded = [_run_once(True) for _ in range(ROUNDS)]

    # Compare min-of-rounds: the floor is the honest per-event cost,
    # everything above it is scheduler noise.
    ratio = min(guarded) / min(bare)
    benchmark.extra_info["bare_s"] = min(bare)
    benchmark.extra_info["guarded_s"] = min(guarded)
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "guard-overhead",
        f"guard off: {min(bare):.3f}s  guard on: {min(guarded):.3f}s  "
        f"ratio: {ratio:.3f}x (bound {OVERHEAD_BOUND}x)",
    )
    assert ratio <= OVERHEAD_BOUND
