"""FIG8 — full application runtime prediction, 1000 ranks, 200 timesteps."""

from benchmarks.conftest import BENCH_REPS, emit
from repro.exps.fig7_8 import format_fig7_8, full_system_curves


def test_fig8_full_system_1000_ranks(benchmark, ctx):
    curves = benchmark.pedantic(
        lambda: full_system_curves(1000, ctx=ctx, reps=BENCH_REPS),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "fig8", format_fig7_8(curves))

    by = {c.scenario: c for c in curves}
    for field in ("measured_total", "simulated_total_mean"):
        vals = [getattr(by[s], field) for s in ("no_ft", "l1", "l1+l2")]
        assert vals[0] < vals[1] < vals[2]
    # checkpointing hurts far more at 1000 ranks than at 64 (the paper's
    # coordinated-checkpointing scaling story); compare relative gaps
    gap_1000 = by["l1+l2"].simulated_total_mean / by["no_ft"].simulated_total_mean
    assert gap_1000 > 2.0
    # the paper reports growing divergence at the 1000-rank corner
    # (Fig. 6D / Fig. 8); keep the error within the exploratory band
    assert all(c.percent_error < 50.0 for c in curves)
