"""OBS — metrics-on vs metrics-off overhead on the Fig. 7 workload.

Runs the 64-rank LULESH proxy (200 timesteps, L1 checkpoints every 40)
through the sequential engine twice per round: bare, and with a full
:class:`~repro.obs.instrument.EngineObs` attached (per-event handler
timing, queue-depth sampling, span + counter flush).  The min-of-rounds
ratio lands in ``extra_info`` and is asserted to stay within the PR's
overhead budget: observability must be cheap enough to leave on.
"""

import time

from benchmarks.conftest import emit
from repro.apps import lulesh_appbeo
from repro.core import BESSTSimulator
from repro.core.ft import scenario_l1
from repro.obs.instrument import EngineObs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

RANKS = 64
TIMESTEPS = 200
EPR = 10
ROUNDS = 3

#: metrics-on / metrics-off wall time (min of rounds) must stay under this
OVERHEAD_BOUND = 1.1


def _make_sim(ctx):
    app = lulesh_appbeo(timesteps=TIMESTEPS, scenario=scenario_l1(40))
    return BESSTSimulator(
        app, ctx.archbeo, nranks=RANKS, params={"epr": EPR}, seed=0
    )


def _run_bare(ctx) -> float:
    sim = _make_sim(ctx)
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    assert res.completed
    return dt


def _run_observed(ctx) -> float:
    sim = _make_sim(ctx)
    # Private registry + tracer: the bench must not pollute (or pay for
    # contention on) the process-global registry.
    obs = EngineObs(registry=MetricsRegistry(), tracer=Tracer())
    sim.engine.attach_obs(obs)
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    assert res.completed
    assert obs.registry.counter("engine_events_total").value > 0
    return dt


def test_obs_overhead_fig7_workload(benchmark, ctx):
    _run_bare(ctx)  # warm imports, model LUTs, allocator
    _run_observed(ctx)

    bare = [_run_bare(ctx) for _ in range(ROUNDS)]

    def one_round():
        return _run_observed(ctx)

    benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
    observed = [_run_observed(ctx) for _ in range(ROUNDS)]

    # Compare min-of-rounds: the floor is the honest per-event cost,
    # everything above it is scheduler noise.
    ratio = min(observed) / min(bare)
    benchmark.extra_info["bare_s"] = min(bare)
    benchmark.extra_info["observed_s"] = min(observed)
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "obs-overhead",
        f"metrics off: {min(bare):.3f}s  metrics on: {min(observed):.3f}s  "
        f"ratio: {ratio:.3f}x (bound {OVERHEAD_BOUND}x)",
    )
    assert ratio <= OVERHEAD_BOUND
