"""FIG5 — instance-model validation and prediction vs problem size."""

from benchmarks.conftest import emit
from repro.exps.fig5_6 import PREDICT_EPR, format_fig5, instance_scaling


def test_fig5_scaling_vs_problem_size(benchmark, ctx):
    rows = benchmark.pedantic(
        lambda: instance_scaling(ctx), rounds=1, iterations=1
    )
    emit(benchmark, "fig5", format_fig5(rows))

    by = {(r.kernel, r.epr, r.ranks): r for r in rows}
    # checkpoint kernels sit above the timestep and scale faster with epr
    for ranks in (8, 64, 1000):
        step5 = by[("lulesh_timestep", 5, ranks)].predicted
        step25 = by[("lulesh_timestep", 25, ranks)].predicted
        for k in ("fti_l1", "fti_l2"):
            assert by[(k, 5, ranks)].predicted > step5
            assert by[(k, 25, ranks)].predicted > step25
    # the prediction region extends the trend (epr 30 > epr 25)
    for k in ("lulesh_timestep", "fti_l1", "fti_l2"):
        assert (
            by[(k, PREDICT_EPR, 64)].predicted > by[(k, 25, 64)].predicted
        )
        assert by[(k, PREDICT_EPR, 64)].is_prediction
