"""FIG1 — CMT-bone on Vulcan: benchmark-vs-simulation DSE scatter.

Regenerates Fig. 1: Monte-Carlo timestep distributions validated against
virtual-Vulcan measurements up to the allocation, predicted to 1M ranks.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.exps.fig1 import cmtbone_dse, format_fig1


def test_fig1_cmtbone_dse(benchmark):
    points = benchmark.pedantic(
        lambda: cmtbone_dse(
            elem_sizes=(5, 10, 15),
            validate_ranks=(16, 128, 1024),
            predict_ranks=(32_768, 1_048_576),
            reps=5,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "fig1", format_fig1(points))

    validated = [p for p in points if not p.is_prediction]
    predicted = [p for p in points if p.is_prediction]
    assert len(validated) == 9 and len(predicted) == 6
    # validation within DSE-grade accuracy
    mape = np.mean([p.percent_error for p in validated])
    assert mape < 30.0
    # larger problems cost more at every rank count
    by = {(p.elem_size, p.ranks): p.predicted_mean for p in points}
    for r in (16, 128, 1024, 1_048_576):
        assert by[(15, r)] > by[(5, r)]
    # prediction extends the trend beyond the machine
    assert by[(10, 1_048_576)] > by[(10, 1024)]
