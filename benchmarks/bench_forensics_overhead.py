"""FORENSICS — flight-recorder-on vs -off overhead on the Fig. 7 workload.

Runs the 64-rank LULESH proxy (200 timesteps, L1 checkpoints every 40)
through the sequential engine twice per round: bare, and with a
:class:`~repro.obs.flightrec.FlightRecorder` attached (hot-loop tick
sampling every 1024 events plus a live spill file on disk — the full
production configuration ``--flight-dir`` enables).  The min-of-rounds
ratio lands in ``extra_info`` and is asserted to stay within the PR's
overhead budget: forensics must be cheap enough to leave on.
"""

import os
import tempfile
import time

from benchmarks.conftest import emit
from repro.apps import lulesh_appbeo
from repro.core import BESSTSimulator
from repro.core.ft import scenario_l1
from repro.obs.flightrec import FlightRecorder, flight_spill_path

RANKS = 64
TIMESTEPS = 200
EPR = 10
ROUNDS = 3

#: flight-on / flight-off wall time (min of rounds) must stay under this
OVERHEAD_BOUND = 1.1


def _make_sim(ctx):
    app = lulesh_appbeo(timesteps=TIMESTEPS, scenario=scenario_l1(40))
    return BESSTSimulator(
        app, ctx.archbeo, nranks=RANKS, params={"epr": EPR}, seed=0
    )


def _run_bare(ctx) -> float:
    sim = _make_sim(ctx)
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    assert res.completed
    return dt


def _run_recorded(ctx, spill_dir) -> float:
    sim = _make_sim(ctx)
    flight = FlightRecorder(spill_path=flight_spill_path(spill_dir, 0))
    sim.attach_flightrec(flight)
    t0 = time.perf_counter()
    res = sim.run()
    dt = time.perf_counter() - t0
    flight.close(remove_spill=True)
    assert res.completed
    assert flight.seq > 0  # ticks actually fired
    return dt


def test_forensics_overhead_fig7_workload(benchmark, ctx):
    with tempfile.TemporaryDirectory() as spill_dir:
        _run_bare(ctx)  # warm imports, model LUTs, allocator
        _run_recorded(ctx, spill_dir)

        bare = [_run_bare(ctx) for _ in range(ROUNDS)]

        def one_round():
            return _run_recorded(ctx, spill_dir)

        benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
        recorded = [_run_recorded(ctx, spill_dir) for _ in range(ROUNDS)]
        assert not os.listdir(spill_dir)  # spills cleaned after each run

    # Compare min-of-rounds: the floor is the honest per-event cost,
    # everything above it is scheduler noise.
    ratio = min(recorded) / min(bare)
    benchmark.extra_info["bare_s"] = min(bare)
    benchmark.extra_info["recorded_s"] = min(recorded)
    benchmark.extra_info["overhead_ratio"] = ratio
    emit(
        benchmark,
        "forensics-overhead",
        f"flight off: {min(bare):.3f}s  flight on: {min(recorded):.3f}s  "
        f"ratio: {ratio:.3f}x (bound {OVERHEAD_BOUND}x)",
    )
    assert ratio <= OVERHEAD_BOUND
