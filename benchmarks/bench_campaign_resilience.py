"""CAMPAIGN — resilience sweep with the full fault lifecycle.

Exercises the fault-lifecycle machinery end to end (torn checkpoints,
nested faults, escalation, requeue) across a fault-rate × checkpoint
period grid, and checks the survivability statistics are coherent.
"""

from benchmarks.conftest import emit
from repro.core.campaign import ResilienceCampaign
from repro.core.fault_injection import RecoveryPolicy


def test_campaign_resilience_sweep(benchmark):
    camp = ResilienceCampaign(
        reps=6,
        base_seed=0,
        policy=RecoveryPolicy(verify_fail_prob=0.1, requeue_delay_s=5.0),
    )
    report = benchmark.pedantic(
        lambda: camp.run_grid([4.0, 16.0], [5, 10], timesteps=40),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "campaign", report.format())

    assert len(report.points) == 4
    by = {(p.spec.node_mtbf_s, p.spec.ckpt_period): p for p in report.points}
    # higher fault pressure injects more faults
    assert by[(4.0, 5)].mean_faults > by[(16.0, 5)].mean_faults
    for p in report.points:
        assert 0.0 <= p.completion_probability <= 1.0
        assert set(p.waste) == {"rework", "downtime", "checkpoint", "requeue"}
        if p.completion_probability > 0:
            assert p.expected_makespan > p.spec.work_s
            assert p.youngdaly["ratio"] is not None
